package multi

import (
	"errors"
	"testing"

	"bitspread/internal/rng"
)

func TestUndecidedTransitionTable(t *testing.T) {
	r := Undecided(1)
	tests := []struct {
		name   string
		b      int
		counts []int // one-hot sample of size 1
		want   int   // deterministic target opinion
	}{
		{"0 sees 0 keeps", 0, []int{1, 0, 0}, 0},
		{"0 sees 1 wavers", 0, []int{0, 1, 0}, UndecidedOpinion},
		{"0 sees undecided keeps", 0, []int{0, 0, 1}, 0},
		{"1 sees 0 wavers", 1, []int{1, 0, 0}, UndecidedOpinion},
		{"1 sees 1 keeps", 1, []int{0, 1, 0}, 1},
		{"undecided sees 0 adopts", UndecidedOpinion, []int{1, 0, 0}, 0},
		{"undecided sees 1 adopts", UndecidedOpinion, []int{0, 1, 0}, 1},
		{"undecided sees undecided stays", UndecidedOpinion, []int{0, 0, 1}, UndecidedOpinion},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := r.AdoptDist(tt.b, tt.counts)
			if d[tt.want] != 1 {
				t.Errorf("AdoptDist(%d, %v) = %v, want point mass on %d", tt.b, tt.counts, d, tt.want)
			}
		})
	}
}

func TestUndecidedMultiSample(t *testing.T) {
	r := Undecided(3)
	// Decided 0 seeing {1,1,2}: opposite present, own absent → waver.
	if d := r.AdoptDist(0, []int{0, 2, 1}); d[UndecidedOpinion] != 1 {
		t.Errorf("confronted agent: %v", d)
	}
	// Decided 0 seeing {0,1,1}: own present → keep.
	if d := r.AdoptDist(0, []int{1, 2, 0}); d[0] != 1 {
		t.Errorf("supported agent: %v", d)
	}
	// Undecided with a decided tie stays undecided.
	if d := r.AdoptDist(UndecidedOpinion, []int{1, 1, 1}); d[UndecidedOpinion] != 1 {
		t.Errorf("tied undecided: %v", d)
	}
}

func TestUndecidedViolatesSupportConstraint(t *testing.T) {
	// The undecided state is adopted without being sampled: footnote 2's
	// constraint must reject it.
	if err := Validate(Undecided(1)); !errors.Is(err, ErrSupport) {
		t.Errorf("Validate = %v, want ErrSupport", err)
	}
}

func TestUndecidedAmplifiesMajorityAgainstSource(t *testing.T) {
	// From a wrong-leaning decided split, USD locks the initial majority
	// and the source cannot recover it: bit dissemination fails.
	const n = 600
	res, err := RunParallel(Config{
		N:         n,
		Rule:      Undecided(1),
		Z:         1,
		X0:        []int64{400, 200, 0}, // 2:1 against the source
		MaxRounds: 20_000,
	}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("USD converged to the source's opinion from a wrong-leaning start")
	}
	// The wrong opinion should dominate at the end (the source alone
	// survives on side 1 plus stragglers).
	if res.Final[0] < int64(n)*8/10 {
		t.Errorf("wrong opinion holds %d/%d, expected a near-lock", res.Final[0], n)
	}
}

func TestUndecidedConvergesWithFavourableMajority(t *testing.T) {
	const n = 600
	res, err := RunParallel(Config{
		N:         n,
		Rule:      Undecided(1),
		Z:         1,
		X0:        []int64{200, 400, 0},
		MaxRounds: 20_000,
	}, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("USD failed from a favourable majority: %+v", res)
	}
	if res.Final[UndecidedOpinion] != 0 {
		t.Errorf("undecided agents remain at consensus: %v", res.Final)
	}
}
