package multi

import (
	"errors"
	"math"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestValidateBuiltins(t *testing.T) {
	for _, r := range []Rule{
		Voter(2, 3), Voter(3, 4), Voter(5, 2),
		Minority(2, 3), Minority(3, 5), Minority(4, 4),
		StayRule(3, 2),
	} {
		if err := Validate(r); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestValidateRejectsUnseenAdoption(t *testing.T) {
	if err := Validate(badRule{}); !errors.Is(err, ErrSupport) {
		t.Errorf("error = %v, want ErrSupport", err)
	}
}

// badRule always adopts opinion 2 even when unseen.
type badRule struct{}

func (badRule) Name() string    { return "bad" }
func (badRule) Opinions() int   { return 3 }
func (badRule) SampleSize() int { return 2 }
func (badRule) AdoptDist(b int, counts []int) []float64 {
	return []float64{0, 0, 1}
}

func TestEnumerateProfiles(t *testing.T) {
	// C(ℓ+q-1, q-1) profiles: q=3, ℓ=4 → C(6,2) = 15.
	count := 0
	enumerateProfiles(3, 4, func(counts []int) {
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != 4 {
			t.Fatalf("profile %v does not sum to 4", counts)
		}
		count++
	})
	if count != 15 {
		t.Errorf("enumerated %d profiles, want 15", count)
	}
}

func TestMultinomialPMFSumsToOne(t *testing.T) {
	p := []float64{0.2, 0.5, 0.3}
	for _, ell := range []int{1, 3, 6} {
		sum := 0.0
		enumerateProfiles(3, ell, func(counts []int) {
			sum += multinomialPMF(ell, counts, p)
		})
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("ℓ=%d: pmf sums to %v", ell, sum)
		}
	}
	// Zero-probability category: profiles touching it get 0.
	if got := multinomialPMF(2, []int{1, 1, 0}, []float64{0, 0.5, 0.5}); got != 0 {
		t.Errorf("impossible profile pmf = %v", got)
	}
}

func TestMinorityProfileDecisions(t *testing.T) {
	r := Minority(3, 4)
	tests := []struct {
		counts []int
		want   []float64
	}{
		{[]int{4, 0, 0}, []float64{1, 0, 0}},     // unanimous
		{[]int{3, 1, 0}, []float64{0, 1, 0}},     // 1 is minority
		{[]int{2, 1, 1}, []float64{0, 0.5, 0.5}}, // tie between 1 and 2
		{[]int{2, 2, 0}, []float64{0.5, 0.5, 0}}, // two-way tie
	}
	for _, tt := range tests {
		got := r.AdoptDist(0, tt.counts)
		for j := range tt.want {
			if math.Abs(got[j]-tt.want[j]) > 1e-12 {
				t.Errorf("AdoptDist(%v) = %v, want %v", tt.counts, got, tt.want)
			}
		}
	}
}

// TestBinaryReduction is footnote 2 made executable: on configurations
// using only opinions {0,1}, the q=3 Voter and Minority step
// distributions must match the binary engines exactly (same conditional
// means, and opinion 2 never appears).
func TestBinaryReduction(t *testing.T) {
	const (
		n    = 300
		x1   = 120
		z    = 1
		reps = 2000
	)
	cases := []struct {
		name   string
		multi  Rule
		binary *protocol.Rule
	}{
		{"voter", Voter(3, 1), protocol.Voter(1)},
		{"minority", Minority(3, 3), protocol.Minority(3)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := float64(x1) / n
			wantMean := float64(z) + float64(x1-z)*tc.binary.AdoptProb(1, p) +
				float64(n-x1-(1-z))*tc.binary.AdoptProb(0, p)

			g := rng.New(31)
			sum := 0.0
			for i := 0; i < reps; i++ {
				next := Step(tc.multi, n, z, []int64{n - x1, x1, 0}, g)
				if next[2] != 0 {
					t.Fatal("opinion 2 appeared from a binary configuration")
				}
				if next[0]+next[1] != n {
					t.Fatal("population not conserved")
				}
				sum += float64(next[1])
			}
			mean := sum / reps
			se := math.Sqrt(float64(n) / 4 / reps)
			if math.Abs(mean-wantMean) > 6*se {
				t.Errorf("multi mean = %v, binary predicts %v (±%v)", mean, wantMean, 6*se)
			}
		})
	}
}

func TestBinaryReductionFullRun(t *testing.T) {
	// End-to-end: the q=3 Voter from a binary worst-case start converges
	// to z with opinion 2 never appearing; convergence times are in the
	// same regime as the binary Voter.
	const n, z = 128, 0
	cfg := Config{
		N:    n,
		Rule: Voter(3, 1),
		Z:    z,
		X0:   []int64{1, n - 1, 0},
	}
	sawThird := false
	cfg.Record = func(_ int64, counts []int64) {
		if counts[2] != 0 {
			sawThird = true
		}
	}
	res, err := RunParallel(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if sawThird {
		t.Error("unseen opinion appeared during a binary-start run")
	}

	bin, err := engine.RunParallel(engine.Config{
		N: n, Rule: protocol.Voter(1), Z: z, X0: engine.WorstCaseInit(n, z),
	}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// Same regime, not same value: within a factor 20 on one seed.
	ratio := float64(res.Rounds) / float64(bin.Rounds)
	if ratio < 0.05 || ratio > 20 {
		t.Errorf("multi τ=%d vs binary τ=%d: regimes diverge", res.Rounds, bin.Rounds)
	}
}

func TestThreeOpinionVoterConverges(t *testing.T) {
	const n = 90
	res, err := RunParallel(Config{
		N:    n,
		Rule: Voter(3, 1),
		Z:    2,
		X0:   []int64{30, 30, 30},
	}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Final[2] != n {
		t.Fatalf("3-opinion voter: %+v", res)
	}
}

func TestStayRuleNeverConverges(t *testing.T) {
	res, err := RunParallel(Config{
		N:         20,
		Rule:      StayRule(3, 1),
		Z:         0,
		X0:        []int64{10, 5, 5},
		MaxRounds: 50,
	}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("stay rule converged")
	}
	if res.Final[0] != 10 || res.Final[1] != 5 || res.Final[2] != 5 {
		t.Errorf("stay rule moved the histogram: %v", res.Final)
	}
}

func TestConsensusAbsorbing(t *testing.T) {
	g := rng.New(11)
	for i := 0; i < 50; i++ {
		next := Step(Minority(3, 3), 60, 1, []int64{0, 60, 0}, g)
		if next[1] != 60 {
			t.Fatalf("consensus not absorbing: %v", next)
		}
	}
}

func TestPopulationConservedQuick(t *testing.T) {
	g := rng.New(12)
	rules := []Rule{Voter(3, 2), Minority(4, 3), StayRule(3, 1)}
	for trial := 0; trial < 300; trial++ {
		r := rules[trial%len(rules)]
		q := r.Opinions()
		n := int64(50 + trial%100)
		x := make([]int64, q)
		left := n
		for j := 0; j < q-1; j++ {
			v := int64(g.Intn(int(left + 1)))
			x[j] = v
			left -= v
		}
		x[q-1] = left
		z := 0
		if x[0] == 0 {
			x[0] = 1
			x[q-1]--
			if x[q-1] < 0 {
				continue
			}
		}
		next := Step(r, n, z, x, g)
		var sum int64
		for _, c := range next {
			if c < 0 {
				t.Fatalf("negative count in %v", next)
			}
			sum += c
		}
		if sum != n {
			t.Fatalf("population changed: %v sums to %d, want %d", next, sum, n)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	r := Voter(3, 1)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil rule", Config{N: 10, Z: 0, X0: []int64{10, 0, 0}}},
		{"tiny population", Config{N: 1, Rule: r, Z: 0, X0: []int64{1, 0, 0}}},
		{"bad z", Config{N: 10, Rule: r, Z: 3, X0: []int64{10, 0, 0}}},
		{"wrong histogram length", Config{N: 10, Rule: r, Z: 0, X0: []int64{10, 0}}},
		{"negative count", Config{N: 10, Rule: r, Z: 0, X0: []int64{11, -1, 0}}},
		{"wrong sum", Config{N: 10, Rule: r, Z: 0, X0: []int64{5, 0, 0}}},
		{"source missing", Config{N: 10, Rule: r, Z: 0, X0: []int64{0, 10, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunParallel(tc.cfg, rng.New(1)); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}
