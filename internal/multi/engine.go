package multi

import (
	"fmt"
	"math"

	"bitspread/internal/rng"
)

// Config describes a multi-opinion bit-dissemination instance.
type Config struct {
	// N is the population size including the source.
	N int64
	// Rule is the multi-opinion update rule.
	Rule Rule
	// Z is the correct opinion in [0, q).
	Z int
	// X0 is the initial opinion histogram (length q, summing to N, with
	// the source counted under Z).
	X0 []int64
	// MaxRounds caps the run (0: 64·n·ln n + 1024).
	MaxRounds int64
	// Record, if non-nil, receives (round, histogram) after every round;
	// the histogram slice is reused between calls.
	Record func(round int64, counts []int64)
}

// Result reports a multi-opinion run.
type Result struct {
	// Converged is true when every agent held Z (the correct consensus is
	// absorbing for any valid rule: unanimous samples leave no other
	// opinion in any support set).
	Converged bool
	// Rounds is the convergence round, or the executed rounds otherwise.
	Rounds int64
	// Final is the opinion histogram when the run stopped.
	Final []int64
}

// Step advances the exact count-level chain one parallel round and
// returns the next histogram. Conditioned on the current histogram x,
// each non-source agent of opinion b independently adopts opinion j with
// probability q_b(j) = Σ_profiles P(profile | x)·AdoptDist(b, profile)[j],
// so the per-class transition counts are multinomial — the multi-opinion
// analogue of the binary engine's two binomials.
func Step(r Rule, n int64, z int, x []int64, g *rng.RNG) []int64 {
	q := r.Opinions()
	ell := r.SampleSize()
	p := make([]float64, q)
	for j, c := range x {
		p[j] = float64(c) / float64(n)
	}

	// Per-class adoption distributions.
	adopt := make([][]float64, q)
	for b := 0; b < q; b++ {
		adopt[b] = make([]float64, q)
	}
	enumerateProfiles(q, ell, func(counts []int) {
		w := multinomialPMF(ell, counts, p)
		//bitlint:floatexact sparse skip; a bit-exact zero profile weight contributes nothing
		if w == 0 {
			return
		}
		for b := 0; b < q; b++ {
			if x[b] == 0 {
				continue
			}
			d := r.AdoptDist(b, counts)
			for j, pj := range d {
				adopt[b][j] += w * pj
			}
		}
	})

	next := make([]int64, q)
	next[z]++ // the source
	for b := 0; b < q; b++ {
		m := x[b]
		if b == z {
			m-- // the source does not update
		}
		if m <= 0 {
			continue
		}
		sampleMultinomial(m, adopt[b], next, g)
	}
	return next
}

// sampleMultinomial adds a Multinomial(m, probs) draw into dst, using
// sequential conditional binomials.
func sampleMultinomial(m int64, probs []float64, dst []int64, g *rng.RNG) {
	remaining := m
	massLeft := 1.0
	for j := 0; j < len(probs)-1 && remaining > 0; j++ {
		pj := probs[j]
		if pj <= 0 {
			continue
		}
		cond := pj / massLeft
		if cond > 1 {
			cond = 1
		}
		draw := g.Binomial(remaining, cond)
		dst[j] += draw
		remaining -= draw
		massLeft -= pj
		if massLeft <= 0 {
			massLeft = 0
		}
	}
	if remaining > 0 {
		// Assign the remainder to the last positive-probability category,
		// so float round-off can never place agents on an impossible
		// opinion.
		last := len(probs) - 1
		for last > 0 && probs[last] <= 0 {
			last--
		}
		dst[last] += remaining
	}
}

// RunParallel simulates the multi-opinion parallel process with the exact
// count engine.
func RunParallel(cfg Config, g *rng.RNG) (Result, error) {
	if err := validateConfig(&cfg); err != nil {
		return Result{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = int64(64*float64(cfg.N)*math.Log(float64(cfg.N))) + 1024
	}
	x := append([]int64(nil), cfg.X0...)
	res := Result{Final: x}
	if x[cfg.Z] == cfg.N {
		res.Converged = true
		return res, nil
	}
	for t := int64(1); t <= maxRounds; t++ {
		x = Step(cfg.Rule, cfg.N, cfg.Z, x, g)
		res.Rounds = t
		res.Final = x
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
		if x[cfg.Z] == cfg.N {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

func validateConfig(cfg *Config) error {
	if cfg.Rule == nil {
		return fmt.Errorf("multi: rule must not be nil")
	}
	q := cfg.Rule.Opinions()
	if cfg.N < 2 {
		return fmt.Errorf("multi: population %d too small", cfg.N)
	}
	if cfg.Z < 0 || cfg.Z >= q {
		return fmt.Errorf("multi: correct opinion %d outside [0,%d)", cfg.Z, q)
	}
	if len(cfg.X0) != q {
		return fmt.Errorf("multi: X0 has %d entries, want %d", len(cfg.X0), q)
	}
	var sum int64
	for j, c := range cfg.X0 {
		if c < 0 {
			return fmt.Errorf("multi: X0[%d] = %d negative", j, c)
		}
		sum += c
	}
	if sum != cfg.N {
		return fmt.Errorf("multi: X0 sums to %d, want %d", sum, cfg.N)
	}
	if cfg.X0[cfg.Z] < 1 {
		return fmt.Errorf("multi: the source holds opinion %d but X0[%d] = 0", cfg.Z, cfg.Z)
	}
	return nil
}
