package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile is the unified pprof flag pair of the CLIs: every tool
// registers the same -cpuprofile/-memprofile flags with the same
// semantics, so profiling a hot path works identically across bitsim,
// bitsweep and bitbench.
//
//	var prof obs.Profile
//	prof.Register(fs)
//	// after flag parsing:
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
//
// Start is a no-op when neither flag was set; Stop is idempotent, stops
// the CPU profile, and writes the heap profile.
type Profile struct {
	cpuPath string
	memPath string
	cpuFile *os.File
}

// Register installs the -cpuprofile and -memprofile flags on fs.
func (p *Profile) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&p.memPath, "memprofile", "", "write a pprof heap profile at the end of the run to this file")
}

// Start begins CPU profiling if -cpuprofile was given.
func (p *Profile) Start() error {
	if p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: cpu profile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile if -memprofile was
// given. Safe to call multiple times; later calls are no-ops.
func (p *Profile) Stop() error {
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			first = err
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		path := p.memPath
		p.memPath = ""
		f, err := os.Create(path)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("obs: heap profile: %w", err)
			}
			return first
		}
		runtime.GC() // materialize the final live set before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("obs: heap profile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
