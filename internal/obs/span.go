package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one run-level event, serialized as a single JSONL line. Spans
// live next to sim.Journal checkpoint lines — same format family, one
// JSON object per line — but in their own file: journals are replayable
// state, spans are telemetry.
//
// AtMS is wall-clock milliseconds since the writer was created, DurMS
// the wall-clock duration of the replica for replica_done events. Both
// are observability metadata: nothing deterministic ever reads them.
type Span struct {
	// Ev is the event kind: run_start, replica_start, replica_done,
	// checkpoint, recovery, run_done.
	Ev string `json:"ev"`
	// Task is the sim task name the event belongs to (empty for
	// run-level events).
	Task string `json:"task,omitempty"`
	// Replica is the replica index within the task (-1 for events that
	// are not about one replica).
	Replica int `json:"replica"`
	// AtMS is milliseconds since the span writer was created.
	AtMS float64 `json:"at_ms"`
	// DurMS is the wall-clock duration in milliseconds (replica_done).
	DurMS float64 `json:"dur_ms,omitempty"`
	// Rounds carries Result.Rounds for replica_done and the recovery
	// round count for recovery events.
	Rounds int64 `json:"rounds,omitempty"`
	// Converged is Result.Converged for replica_done events.
	Converged bool `json:"converged,omitempty"`
	// State is the replica's terminal ReplicaState (done, failed,
	// cancelled, timed-out) for replica_done events.
	State string `json:"state,omitempty"`
}

// SpanWriter emits spans as JSONL. It is safe for concurrent use — the
// sim worker pool emits replica events from many goroutines — and
// remembers the first write error instead of failing mid-sweep; callers
// check Err once at the end.
type SpanWriter struct {
	mu    sync.Mutex
	enc   *json.Encoder
	start time.Time
	open  map[spanKey]time.Time
	err   error
}

// spanKey identifies an in-flight replica span.
type spanKey struct {
	task    string
	replica int
}

// NewSpanWriter returns a writer emitting to w, stamping a run_start
// span at creation.
func NewSpanWriter(w io.Writer) *SpanWriter {
	s := &SpanWriter{
		enc: json.NewEncoder(w),
		//bitlint:wallclock span timestamps are telemetry; no simulation state ever reads them
		start: time.Now(),
		open:  map[spanKey]time.Time{},
	}
	s.emit(Span{Ev: "run_start", Replica: -1})
	return s
}

// emit stamps and writes one span under the lock.
func (s *SpanWriter) emit(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//bitlint:wallclock span timestamps are telemetry; no simulation state ever reads them
	sp.AtMS = float64(time.Since(s.start).Microseconds()) / 1e3
	if err := s.enc.Encode(sp); err != nil && s.err == nil {
		s.err = err
	}
}

// Err returns the first write error, if any.
func (s *SpanWriter) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stamps the terminal run_done span and reports the first write
// error. The underlying writer is the caller's to close.
func (s *SpanWriter) Close() error {
	if s == nil {
		return nil
	}
	s.emit(Span{Ev: "run_done", Replica: -1})
	return s.Err()
}

// RunObserver adapts a SpanWriter (plus optional registry counters) to
// the sim run-level Observer contract (bitspread/internal/sim.Observer):
// replica lifecycle, checkpoint and recovery events become JSONL spans
// and bitspread_replica*/bitspread_checkpoint*/bitspread_recovery*
// counters. Safe for concurrent use; a nil *RunObserver is a no-op.
type RunObserver struct {
	spans       *SpanWriter
	replicas    *Counter
	converged   *Counter
	checkpoints *Counter
	recoveries  *Counter
}

// NewRunObserver builds the observer. spans may be nil (counters only)
// and reg may be nil (spans only); both nil yields a no-op observer.
func NewRunObserver(spans *SpanWriter, reg *Registry) *RunObserver {
	return &RunObserver{
		spans:       spans,
		replicas:    reg.Counter("bitspread_replicas_total"),
		converged:   reg.Counter("bitspread_replicas_converged_total"),
		checkpoints: reg.Counter("bitspread_checkpoints_total"),
		recoveries:  reg.Counter("bitspread_recoveries_total"),
	}
}

// ReplicaStart implements the sim Observer contract.
func (o *RunObserver) ReplicaStart(task string, replica int) {
	if o == nil {
		return
	}
	if o.spans != nil {
		o.spans.mu.Lock()
		//bitlint:wallclock replica duration is telemetry; no simulation state ever reads it
		o.spans.open[spanKey{task, replica}] = time.Now()
		o.spans.mu.Unlock()
		o.spans.emit(Span{Ev: "replica_start", Task: task, Replica: replica})
	}
}

// ReplicaDone implements the sim Observer contract.
func (o *RunObserver) ReplicaDone(task string, replica int, rounds int64, converged bool, state string) {
	if o == nil {
		return
	}
	o.replicas.Inc()
	if converged {
		o.converged.Inc()
	}
	if o.spans != nil {
		sp := Span{Ev: "replica_done", Task: task, Replica: replica,
			Rounds: rounds, Converged: converged, State: state}
		o.spans.mu.Lock()
		key := spanKey{task, replica}
		if t0, ok := o.spans.open[key]; ok {
			//bitlint:wallclock replica duration is telemetry; no simulation state ever reads it
			sp.DurMS = float64(time.Since(t0).Microseconds()) / 1e3
			delete(o.spans.open, key)
		}
		o.spans.mu.Unlock()
		o.spans.emit(sp)
	}
}

// Checkpoint implements the sim Observer contract: the replica's result
// was flushed to the journal.
func (o *RunObserver) Checkpoint(task string, replica int) {
	if o == nil {
		return
	}
	o.checkpoints.Inc()
	if o.spans != nil {
		o.spans.emit(Span{Ev: "checkpoint", Task: task, Replica: replica})
	}
}

// Recovery implements the sim Observer contract: the replica re-reached
// consensus rounds rounds after its fault schedule's horizon.
func (o *RunObserver) Recovery(task string, replica int, rounds int64) {
	if o == nil {
		return
	}
	o.recoveries.Inc()
	if o.spans != nil {
		o.spans.emit(Span{Ev: "recovery", Task: task, Replica: replica, Rounds: rounds})
	}
}
