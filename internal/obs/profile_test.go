package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileDisabledIsNoOp(t *testing.T) {
	var p Profile
	if err := p.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	var p Profile
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// Idempotent.
	if err := p.Stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}

	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("stat %s: %v", path, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}
