package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func decodeSpans(t *testing.T, out string) []Span {
	t.Helper()
	var spans []Span
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		spans = append(spans, sp)
	}
	return spans
}

func TestSpanWriterLifecycle(t *testing.T) {
	var buf strings.Builder
	sw := NewSpanWriter(&buf)
	reg := NewRegistry()
	o := NewRunObserver(sw, reg)

	o.ReplicaStart("taskA", 0)
	o.ReplicaDone("taskA", 0, 42, true, "done")
	o.Checkpoint("taskA", 0)
	o.ReplicaStart("taskA", 1)
	o.ReplicaDone("taskA", 1, 99, false, "failed")
	o.Recovery("taskA", 1, 7)
	if err := sw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	spans := decodeSpans(t, buf.String())
	wantEv := []string{"run_start", "replica_start", "replica_done", "checkpoint",
		"replica_start", "replica_done", "recovery", "run_done"}
	if len(spans) != len(wantEv) {
		t.Fatalf("got %d spans, want %d:\n%s", len(spans), len(wantEv), buf.String())
	}
	for i, ev := range wantEv {
		if spans[i].Ev != ev {
			t.Errorf("span %d ev = %q, want %q", i, spans[i].Ev, ev)
		}
	}
	done := spans[2]
	if done.Task != "taskA" || done.Replica != 0 || done.Rounds != 42 || !done.Converged || done.State != "done" {
		t.Errorf("replica_done span wrong: %+v", done)
	}
	if done.DurMS < 0 {
		t.Errorf("replica_done DurMS = %v, want >= 0", done.DurMS)
	}
	if rec := spans[6]; rec.Rounds != 7 {
		t.Errorf("recovery rounds = %d, want 7", rec.Rounds)
	}

	if got := reg.Counter("bitspread_replicas_total").Value(); got != 2 {
		t.Errorf("replicas_total = %d, want 2", got)
	}
	if got := reg.Counter("bitspread_replicas_converged_total").Value(); got != 1 {
		t.Errorf("replicas_converged_total = %d, want 1", got)
	}
	if got := reg.Counter("bitspread_checkpoints_total").Value(); got != 1 {
		t.Errorf("checkpoints_total = %d, want 1", got)
	}
	if got := reg.Counter("bitspread_recoveries_total").Value(); got != 1 {
		t.Errorf("recoveries_total = %d, want 1", got)
	}
}

func TestRunObserverNilSafety(t *testing.T) {
	var o *RunObserver
	o.ReplicaStart("t", 0)
	o.ReplicaDone("t", 0, 1, true, "done")
	o.Checkpoint("t", 0)
	o.Recovery("t", 0, 1)

	// Counters only, no span writer.
	reg := NewRegistry()
	o2 := NewRunObserver(nil, reg)
	o2.ReplicaStart("t", 0)
	o2.ReplicaDone("t", 0, 1, true, "done")
	if got := reg.Counter("bitspread_replicas_total").Value(); got != 1 {
		t.Errorf("replicas_total = %d, want 1", got)
	}

	// Spans only, no registry: counters are nil no-ops.
	var buf strings.Builder
	o3 := NewRunObserver(NewSpanWriter(&buf), nil)
	o3.ReplicaDone("t", 0, 1, true, "done")

	var nilSW *SpanWriter
	if err := nilSW.Close(); err != nil {
		t.Errorf("nil SpanWriter Close: %v", err)
	}
	if err := nilSW.Err(); err != nil {
		t.Errorf("nil SpanWriter Err: %v", err)
	}
}

func TestSpanWriterConcurrent(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	// strings.Builder is not concurrency-safe; wrap it. The SpanWriter
	// serializes its own encoding, but the test still runs the observer
	// from many goroutines to exercise the lock under -race.
	sw := NewSpanWriter(lockedWriter{&mu, &buf})
	o := NewRunObserver(sw, NewRegistry())
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o.ReplicaStart("t", r)
			o.ReplicaDone("t", r, int64(r), true, "done")
		}(r)
	}
	wg.Wait()
	if err := sw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	mu.Lock()
	spans := decodeSpans(t, buf.String())
	mu.Unlock()
	if len(spans) != 2+2*16 {
		t.Errorf("got %d spans, want %d", len(spans), 2+2*16)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
