// Package obs is the observability layer of the simulation stack: a
// registry of counters, gauges and fixed-bucket histograms with an
// allocation-free hot path, engine probes that fold structured per-round
// events into that registry, run-level spans exported as JSONL (next to
// sim.Journal checkpoint lines), a Prometheus-style text exposition of a
// registry snapshot, and the unified pprof flag set of the CLIs.
//
// The package is zero-dependency (stdlib only, no imports from the rest
// of the repo) and sits deliberately OUTSIDE the deterministic core
// (internal/engine, internal/sim, internal/fault, …): probes and spans
// observe a run, they never feed back into it. Wall-clock reads are
// confined to this package and carry //bitlint:wallclock justifications;
// every value derived from them is metadata (span timestamps, durations),
// never simulation state — the engines stay pure functions of
// (seed, Config, Shards) with or without instrumentation.
//
// Everything is nil-safe by design: a nil *Registry hands out nil
// metrics, and every method of a nil *Counter/*Gauge/*Histogram/*Metrics
// is a no-op. Uninstrumented runs therefore pay exactly one pointer
// nil-check per event — the engines' `if cfg.Probe != nil` guard — and
// nothing else.
package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe on a nil receiver (no-ops) and for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. The zero value is ready to use; all
// methods are safe on a nil receiver (no-ops) and for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last stored value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution metric: bounds are the
// inclusive upper bucket bounds in increasing order, and every Observe
// lands in the first bucket whose bound is >= the value, or in the
// implicit +Inf overflow bucket. Observing is a linear scan over a
// handful of bounds plus two atomic adds — no allocation, no locking.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Int64
}

// Observe records one int64-valued sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && float64(v) > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry names and owns a set of metrics. Lookups (Counter, Gauge,
// Histogram) lock and may allocate — they belong in setup code, never in
// a round loop; callers hold on to the returned metric and hit only its
// atomic hot path. A nil *Registry is the disabled registry: it hands
// out nil metrics, whose methods are all no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// checkName panics on names the text exposition could not represent.
// Metric names are programmer-supplied constants, so a bad one is a bug,
// not an input error.
func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper bucket bounds on first use (later calls reuse the existing
// buckets and ignore bounds). A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name)
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not increasing: %v", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// WriteText writes a Prometheus-style text exposition snapshot of every
// registered metric, sorted by name so output is deterministic. A nil
// registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			name, name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n",
			name, name, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		if err := writeHistogram(w, name, r.hists[name]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram with cumulative le-labelled
// buckets, the Prometheus convention.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, cum)
	return err
}

// sortedKeys returns the map's keys in sorted order; exposition output
// must not depend on map iteration order.
func sortedKeys[V any](m map[string]*V) []string {
	keys := make([]string, 0, len(m))
	//bitlint:maporder keys are sorted immediately below; iteration order cannot leak
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteSnapshot writes the registry's text exposition to the file at
// path, with "-" meaning the provided stdout writer. A nil registry (or
// empty path) writes nothing — the CLIs call this unconditionally.
func WriteSnapshot(reg *Registry, path string, stdout io.Writer) error {
	if reg == nil || path == "" {
		return nil
	}
	if path == "-" {
		return reg.WriteText(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
