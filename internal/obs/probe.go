package obs

// Metrics is the standard engine probe: it folds the structured
// per-round events of the engines — one-count, activation counts, fault
// applications, per-shard load — into registry metrics. It satisfies the
// engine Probe contract (bitspread/internal/engine.Probe) without
// importing it, so obs stays dependency-free.
//
// All methods are atomic-counter updates with no allocation and no
// locking, so one Metrics value is safe to share across every replica
// and shard goroutine of a sweep — exactly how sim attaches it. A nil
// *Metrics is a valid no-op probe (but prefer leaving Config.Probe nil:
// a nil interface skips even the method call).
type Metrics struct {
	// Rounds counts parallel rounds executed across all instrumented runs.
	Rounds *Counter
	// Activations counts agent updates actually performed (the per-round
	// slices of Result.Activations).
	Activations *Counter
	// FaultRounds counts rounds in which the fault schedule actively
	// perturbed the run (boundary event or source deviation).
	FaultRounds *Counter
	// Ones is the one-count after the most recently completed round.
	Ones *Gauge
	// RoundLoad is the distribution of per-round activation counts;
	// omission bursts and stubborn windows show up as mass in the low
	// buckets.
	RoundLoad *Histogram
	// ShardLoad is the distribution of per-shard, per-round activation
	// counts in the sharded agent engines — the shard-balance signal.
	ShardLoad *Histogram
}

// LoadBuckets are the default upper bounds of the activation-count
// histograms: powers of 16 spanning one agent to a full 2³² population.
var LoadBuckets = []float64{0, 1 << 4, 1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 28, 1 << 32}

// NewMetrics registers the standard engine metrics (bitspread_*) in reg
// and returns the probe. A nil registry yields an all-no-op probe.
func NewMetrics(reg *Registry) *Metrics {
	return &Metrics{
		Rounds:      reg.Counter("bitspread_rounds_total"),
		Activations: reg.Counter("bitspread_activations_total"),
		FaultRounds: reg.Counter("bitspread_fault_rounds_total"),
		Ones:        reg.Gauge("bitspread_one_count"),
		RoundLoad:   reg.Histogram("bitspread_round_activations", LoadBuckets),
		ShardLoad:   reg.Histogram("bitspread_shard_activations", LoadBuckets),
	}
}

// RoundDone implements the engine Probe contract: one parallel round
// finished with the given one-count and sampled-agent count.
func (m *Metrics) RoundDone(round, ones, sampled int64) {
	if m == nil {
		return
	}
	m.Rounds.Inc()
	m.Activations.Add(sampled)
	m.Ones.Set(ones)
	m.RoundLoad.Observe(sampled)
}

// FaultApplied implements the engine Probe contract: the fault schedule
// actively perturbed round round.
func (m *Metrics) FaultApplied(round int64) {
	if m == nil {
		return
	}
	m.FaultRounds.Inc()
}

// ShardRound implements the engine Probe contract: one shard of a
// sharded agent engine finished a round having sampled that many agents.
func (m *Metrics) ShardRound(shard int, sampled int64) {
	if m == nil {
		return
	}
	m.ShardLoad.Observe(sampled)
}
