package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bitspread_test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("bitspread_test_total"); again != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("bitspread_test_gauge")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want 3", g.Value())
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("whatever")
	g := r.Gauge("whatever")
	h := r.Histogram("whatever", LoadBuckets)
	c.Inc()
	c.Add(3)
	g.Set(9)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must observe nothing")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WriteText: %v", err)
	}

	m := NewMetrics(nil)
	m.RoundDone(1, 2, 3)
	m.FaultApplied(1)
	m.ShardRound(0, 4)
	var nilM *Metrics
	nilM.RoundDone(1, 2, 3)
	nilM.FaultApplied(1)
	nilM.ShardRound(0, 4)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bitspread_test_hist", []float64{1, 10, 100})
	for _, v := range []int64{0, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1024 {
		t.Errorf("sum = %d, want 1024", h.Sum())
	}
	want := []int64{2, 2, 1, 1} // le=1: {0,1}; le=10: {2,10}; le=100: {11}; +Inf: {1000}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("bitspread_b_total").Add(2)
	r.Counter("bitspread_a_total").Add(1)
	r.Gauge("bitspread_g").Set(5)
	h := r.Histogram("bitspread_h", []float64{1, 2})
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Counters are sorted, so a_total precedes b_total.
	if strings.Index(out, "bitspread_a_total 1") > strings.Index(out, "bitspread_b_total 2") {
		t.Errorf("counters not sorted:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE bitspread_a_total counter",
		"# TYPE bitspread_g gauge",
		"bitspread_g 5",
		"# TYPE bitspread_h histogram",
		`bitspread_h_bucket{le="1"} 1`,
		`bitspread_h_bucket{le="2"} 2`,
		`bitspread_h_bucket{le="+Inf"} 3`,
		"bitspread_h_sum 6",
		"bitspread_h_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBadMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "with space", "7starts_with_digit", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestMetricsProbeFoldsEvents(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	m.RoundDone(1, 10, 100)
	m.RoundDone(2, 12, 90)
	m.FaultApplied(2)
	m.ShardRound(0, 45)
	m.ShardRound(1, 45)
	if m.Rounds.Value() != 2 {
		t.Errorf("rounds = %d", m.Rounds.Value())
	}
	if m.Activations.Value() != 190 {
		t.Errorf("activations = %d", m.Activations.Value())
	}
	if m.FaultRounds.Value() != 1 {
		t.Errorf("fault rounds = %d", m.FaultRounds.Value())
	}
	if m.Ones.Value() != 12 {
		t.Errorf("ones = %d", m.Ones.Value())
	}
	if m.ShardLoad.Count() != 2 || m.ShardLoad.Sum() != 90 {
		t.Errorf("shard load = %d/%d", m.ShardLoad.Count(), m.ShardLoad.Sum())
	}
}

// TestMetricsConcurrent exercises the atomic hot path under the race
// detector: one Metrics value shared by many goroutines, as sim shares
// it across replicas.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	var wg sync.WaitGroup
	const workers, rounds = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= rounds; i++ {
				m.RoundDone(i, i, 3)
				m.ShardRound(0, 3)
			}
		}()
	}
	wg.Wait()
	if m.Rounds.Value() != workers*rounds {
		t.Errorf("rounds = %d, want %d", m.Rounds.Value(), workers*rounds)
	}
	if m.Activations.Value() != workers*rounds*3 {
		t.Errorf("activations = %d", m.Activations.Value())
	}
}

// TestHotPathAllocationFree is the obs side of the overhead guard: the
// per-round probe path must not allocate, or sweeps with millions of
// rounds would thrash the GC.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	round := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		round++
		m.RoundDone(round, 42, 1000)
		m.FaultApplied(round)
		m.ShardRound(1, 500)
	})
	if allocs != 0 {
		t.Errorf("probe hot path allocates %.1f times per round, want 0", allocs)
	}
}
