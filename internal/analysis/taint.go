package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural dataflow half of the shared engine
// (callgraph.go is the reachability half): a package-level taint fixpoint
// that tracks which variables, struct fields, and function results can
// carry values derived from analyzer-specified sources, and reports when
// such a value reaches an analyzer-specified sink.
//
// The model is deliberately coarse where coarseness is safe and precise
// where the repo's idioms demand it:
//
//   - value-level, flow-insensitive within a function, monotone across a
//     package-wide fixpoint — loops and mutual recursion converge because
//     facts only grow;
//   - field-sensitive but instance-insensitive: `x.f = tainted` taints
//     the field object f for every instance, which is the sound direction;
//   - interprocedural inside the package via per-function summaries
//     (results tainted unconditionally; parameter i flows to results;
//     parameter i reaches a sink), and via the declared signature for
//     external callees: a call with a tainted argument conservatively
//     taints its results, because dependency bodies exist only as export
//     data;
//   - sanitized parameter types (the explicit-clock idiom: a time.Time or
//     func() time.Time parameter, as in fabric.Board's `now` arguments)
//     are hard boundaries — taint never crosses into a callee through
//     them, in either the summary or the conservative rule. Threading a
//     clock explicitly is exactly the sanctioned alternative to reading
//     it ambiently, so the analysis must not punish it.

// taintOrigin identifies where taint entered a value.
type taintOrigin struct {
	// desc names the source ("time.Now", "map iteration order", …) or is
	// "param" for the pseudo-taint used to compute parameter summaries.
	desc string
	// pos is the source location (the call, the range statement).
	pos token.Pos
	// param is the parameter index for pseudo-taint, -1 otherwise.
	param int
}

func (o taintOrigin) concrete() bool { return o.param < 0 }

// taintSet is a set of origins keyed by identity (desc for concrete
// origins, parameter index for pseudo-origins).
type taintSet map[string]taintOrigin

func (s taintSet) add(o taintOrigin) bool {
	key := o.desc
	if !o.concrete() {
		key = paramKey(o.param)
	}
	if _, ok := s[key]; ok {
		return false
	}
	s[key] = o
	return true
}

func (s taintSet) union(t taintSet) bool {
	changed := false
	for _, o := range t {
		if s.add(o) {
			changed = true
		}
	}
	return changed
}

func paramKey(i int) string { return "param#" + itoa(i) }

// itoa avoids strconv for a hot tiny helper.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 && n > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// taintConfig parameterizes the engine with an analyzer's contract.
type taintConfig struct {
	// source classifies a call as a taint source, returning its
	// description ("time.Now") when it is one.
	source func(p *Pass, call *ast.CallExpr) (string, bool)
	// sink classifies a call as a sink ("journal record"). Every argument
	// is checked; the sink fires when any carries concrete taint.
	sink func(p *Pass, call *ast.CallExpr) (string, bool)
	// compositeSink classifies a composite literal or field write of a
	// protected type ("engine.Result"), or "" when it is not one.
	compositeSink func(p *Pass, t types.Type) (string, bool)
	// sanitizedParam reports parameter types that block taint propagation
	// into callees (the explicit-clock idiom).
	sanitizedParam func(t types.Type) bool
	// mapRange, when true, treats map-iteration loop variables as tainted
	// (iteration order is per-process random).
	mapRange bool
}

// sinkHit is one parameter-to-sink path recorded in a function summary.
type sinkHit struct {
	param int
	desc  string
}

// taintFinding is one deduplicated report.
type taintFinding struct {
	pos    token.Pos
	sink   string
	origin taintOrigin
}

// taintEngine runs the fixpoint for one package.
type taintEngine struct {
	p   *Pass
	cfg taintConfig
	g   *callGraph

	varTaint    map[types.Object]taintSet
	retTaint    map[types.Object]taintSet
	paramToRet  map[types.Object]map[int]bool
	paramToSink map[types.Object][]sinkHit
	findings    map[string]taintFinding
	changed     bool
}

func newTaintEngine(p *Pass, cfg taintConfig) *taintEngine {
	return &taintEngine{
		p:           p,
		cfg:         cfg,
		g:           newCallGraph(p),
		varTaint:    map[types.Object]taintSet{},
		retTaint:    map[types.Object]taintSet{},
		paramToRet:  map[types.Object]map[int]bool{},
		paramToSink: map[types.Object][]sinkHit{},
		findings:    map[string]taintFinding{},
	}
}

// run iterates every function body until the summaries and variable facts
// stop changing, then returns the deduplicated findings in source order.
func (e *taintEngine) run() []taintFinding {
	// Monotone facts over finite domains: the loop terminates. The
	// iteration cap is belt and braces against an engine bug, not a
	// semantic bound.
	for iter := 0; iter < len(e.g.decls)+2; iter++ {
		e.changed = false
		eachFunc(e.p, func(fd *ast.FuncDecl) { e.analyzeFunc(fd) })
		if !e.changed {
			break
		}
	}
	out := make([]taintFinding, 0, len(e.findings))
	for _, f := range e.findings {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].sink < out[j].sink
	})
	return out
}

// funcCtx carries the per-function state of one analyzeFunc walk.
type funcCtx struct {
	obj    types.Object
	params map[types.Object]int
}

// analyzeFunc runs one monotone pass over fd's body.
func (e *taintEngine) analyzeFunc(fd *ast.FuncDecl) {
	obj := e.p.TypesInfo.Defs[fd.Name]
	if obj == nil || fd.Body == nil {
		return
	}
	fc := &funcCtx{obj: obj, params: map[types.Object]int{}}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if po := e.p.TypesInfo.Defs[name]; po != nil {
				// Sanitized parameter types never seed taint: they are the
				// explicit-clock/PID entry points the contract blesses.
				if !e.cfg.sanitizedParam(po.Type()) {
					fc.params[po] = idx
				}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	e.walkStmts(fd.Body, fc)
}

// walkStmts applies the transfer rules to every statement, including
// function-literal bodies (captured variables resolve to the same
// objects, so closures and goroutine literals need no special casing).
func (e *taintEngine) walkStmts(body ast.Node, fc *funcCtx) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			e.transferAssign(st, fc)
		case *ast.RangeStmt:
			e.transferRange(st, fc)
		case *ast.ReturnStmt:
			e.transferReturn(st, fc)
		case *ast.CallExpr:
			// Evaluate for sink/summary side effects even when the result
			// is discarded (ExprStmt, go, defer). Descent continues so
			// function-literal bodies in call position (goroutine
			// literals) get their statements analyzed too; re-walking an
			// argument is idempotent because facts are monotone sets.
			e.exprTaint(st, fc)
		case *ast.CompositeLit:
			e.checkCompositeSink(st, fc)
		}
		return true
	})
}

// transferAssign taints assignment targets from their sources.
func (e *taintEngine) transferAssign(st *ast.AssignStmt, fc *funcCtx) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Tuple assignment from one call/index/assert: every target gets
		// the combined taint.
		t := e.exprTaint(st.Rhs[0], fc)
		for _, lhs := range st.Lhs {
			e.taintTarget(lhs, t, fc)
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i < len(st.Rhs) {
			e.taintTarget(lhs, e.exprTaint(st.Rhs[i], fc), fc)
		}
	}
}

// taintTarget merges taint into the object behind an assignment target.
func (e *taintEngine) taintTarget(lhs ast.Expr, t taintSet, fc *funcCtx) {
	if len(t) == 0 {
		return
	}
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if obj := identObj(e.p.TypesInfo, x); obj != nil {
			e.mergeVar(obj, t)
		}
	case *ast.SelectorExpr:
		// Field write: taints the field object (instance-insensitive) and
		// checks protected-struct sinks.
		if obj := e.p.TypesInfo.Uses[x.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				if desc, isSink := e.compositeSinkOf(e.fieldOwner(x)); isSink {
					e.reportTaint(x.Pos(), desc, t)
				}
			}
			e.mergeVar(obj, t)
		}
	case *ast.IndexExpr:
		// a[i] = v taints the container object, coarsely.
		e.taintTarget(x.X, t, fc)
	case *ast.StarExpr:
		e.taintTarget(x.X, t, fc)
	}
}

// fieldOwner resolves the type owning the field in sel (x.f → type of x).
func (e *taintEngine) fieldOwner(sel *ast.SelectorExpr) types.Type {
	if tv, ok := e.p.TypesInfo.Types[sel.X]; ok {
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		return t
	}
	return nil
}

func (e *taintEngine) compositeSinkOf(t types.Type) (string, bool) {
	if t == nil || e.cfg.compositeSink == nil {
		return "", false
	}
	return e.cfg.compositeSink(e.p, t)
}

func (e *taintEngine) mergeVar(obj types.Object, t taintSet) {
	// Parameter pseudo-taint is meaningful only inside its own function:
	// struct fields and package-level variables outlive the call, so only
	// concrete origins may flow into them (param indices from one
	// function would otherwise masquerade as another's).
	if v, ok := obj.(*types.Var); ok && (v.IsField() || v.Parent() == e.p.Pkg.Scope()) {
		filtered := taintSet{}
		for _, o := range t {
			if o.concrete() {
				filtered.add(o)
			}
		}
		t = filtered
		if len(t) == 0 {
			return
		}
	}
	s := e.varTaint[obj]
	if s == nil {
		s = taintSet{}
		e.varTaint[obj] = s
	}
	if s.union(t) {
		e.changed = true
	}
}

// transferRange handles `for k, v := range x`: container taint propagates
// to the loop variables, and map iteration itself is a source when the
// config says so.
func (e *taintEngine) transferRange(st *ast.RangeStmt, fc *funcCtx) {
	t := taintSet{}
	t.union(e.exprTaint(st.X, fc))
	if e.cfg.mapRange {
		if tv, ok := e.p.TypesInfo.Types[st.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				t.add(taintOrigin{desc: "map iteration order", pos: st.Pos(), param: -1})
			}
		}
	}
	if len(t) == 0 {
		return
	}
	if st.Key != nil {
		e.taintTarget(st.Key, t, fc)
	}
	if st.Value != nil {
		e.taintTarget(st.Value, t, fc)
	}
}

// transferReturn folds result taint into the function summary.
func (e *taintEngine) transferReturn(st *ast.ReturnStmt, fc *funcCtx) {
	for _, res := range st.Results {
		for _, o := range e.exprTaint(res, fc) {
			if o.concrete() {
				s := e.retTaint[fc.obj]
				if s == nil {
					s = taintSet{}
					e.retTaint[fc.obj] = s
				}
				if s.add(o) {
					e.changed = true
				}
			} else {
				m := e.paramToRet[fc.obj]
				if m == nil {
					m = map[int]bool{}
					e.paramToRet[fc.obj] = m
				}
				if !m[o.param] {
					m[o.param] = true
					e.changed = true
				}
			}
		}
	}
}

// exprTaint computes the taint of an expression, walking nested calls for
// their side effects (sink checks, summaries).
func (e *taintEngine) exprTaint(expr ast.Expr, fc *funcCtx) taintSet {
	t := taintSet{}
	switch x := ast.Unparen(expr).(type) {
	case nil:
	case *ast.Ident:
		if obj := identObj(e.p.TypesInfo, x); obj != nil {
			if s := e.varTaint[obj]; s != nil {
				t.union(s)
			}
			if i, ok := fc.params[obj]; ok {
				t.add(taintOrigin{desc: "param", pos: x.Pos(), param: i})
			}
		}
	case *ast.SelectorExpr:
		if obj := e.p.TypesInfo.Uses[x.Sel]; obj != nil {
			if s := e.varTaint[obj]; s != nil {
				t.union(s)
			}
		}
		// Owner taint propagates to the selection (tainted struct, tainted
		// field view) — but not through package qualifiers.
		if _, isPkg := e.p.TypesInfo.Uses[firstIdent(x.X)].(*types.PkgName); !isPkg {
			t.union(e.exprTaint(x.X, fc))
		}
	case *ast.CallExpr:
		return e.callTaint(x, fc)
	case *ast.BinaryExpr:
		t.union(e.exprTaint(x.X, fc))
		t.union(e.exprTaint(x.Y, fc))
	case *ast.UnaryExpr:
		t.union(e.exprTaint(x.X, fc))
	case *ast.StarExpr:
		t.union(e.exprTaint(x.X, fc))
	case *ast.IndexExpr:
		t.union(e.exprTaint(x.X, fc))
	case *ast.SliceExpr:
		t.union(e.exprTaint(x.X, fc))
	case *ast.TypeAssertExpr:
		t.union(e.exprTaint(x.X, fc))
	case *ast.CompositeLit:
		e.checkCompositeSink(x, fc)
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t.union(e.exprTaint(kv.Value, fc))
			} else {
				t.union(e.exprTaint(elt, fc))
			}
		}
	}
	return t
}

// firstIdent returns the leftmost identifier of a selector chain, or nil.
func firstIdent(x ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(x).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			x = v.X
		default:
			return nil
		}
	}
}

// callTaint applies the call transfer rule: sources create taint, sinks
// consume it, summaries and the conservative external rule propagate it.
func (e *taintEngine) callTaint(call *ast.CallExpr, fc *funcCtx) taintSet {
	// Argument taint first (also walks nested calls).
	argT := make([]taintSet, len(call.Args))
	for i, a := range call.Args {
		argT[i] = e.exprTaint(a, fc)
	}
	var recvT taintSet
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := e.p.TypesInfo.Uses[firstIdent(sel.X)].(*types.PkgName); !isPkg {
			recvT = e.exprTaint(sel.X, fc)
		}
	}

	t := taintSet{}
	if desc, ok := e.cfg.source(e.p, call); ok {
		t.add(taintOrigin{desc: desc, pos: call.Pos(), param: -1})
		return t
	}

	fn := calleeFunc(e.p.TypesInfo, call)

	// Sink check: any argument carrying concrete taint fires; pseudo
	// (parameter) taint records a summary entry instead.
	if desc, ok := e.cfg.sink(e.p, call); ok {
		for _, at := range argT {
			e.reportOrSummarize(call.Pos(), desc, at, fc)
		}
		// A sink call's own result (usually error) is not tainted.
		return t
	}

	sanitized := func(i int) bool {
		if fn == nil {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return false
		}
		pi := i
		if pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1 // variadic tail
		}
		return pi >= 0 && e.cfg.sanitizedParam(sig.Params().At(pi).Type())
	}

	if fn != nil && fn.Pkg() == e.p.Pkg {
		// Same-package callee: use the computed summaries.
		if s := e.retTaint[types.Object(fn)]; s != nil {
			t.union(s)
		}
		flows := e.paramToRet[types.Object(fn)]
		for i, at := range argT {
			if sanitized(i) {
				continue
			}
			if flows[i] {
				t.union(at)
			}
			for _, hit := range e.paramToSink[types.Object(fn)] {
				if hit.param == i {
					e.reportOrSummarize(call.Pos(), hit.desc, at, fc)
				}
			}
		}
		return t
	}

	// External or dynamic callee: conservative propagation — any tainted
	// argument (except through sanitized parameter types) or receiver
	// taints the results. This is what carries time.Now().Unix() through
	// fmt.Sprintf and friends.
	for i, at := range argT {
		if !sanitized(i) {
			t.union(at)
		}
	}
	t.union(recvT)
	return t
}

// reportOrSummarize reports concrete taint reaching a sink, and records
// parameter taint as a summary so call sites report instead.
func (e *taintEngine) reportOrSummarize(pos token.Pos, sinkDesc string, t taintSet, fc *funcCtx) {
	for _, o := range t {
		if o.concrete() {
			e.report(pos, sinkDesc, o)
			continue
		}
		hits := e.paramToSink[fc.obj]
		dup := false
		for _, h := range hits {
			if h.param == o.param && h.desc == sinkDesc {
				dup = true
				break
			}
		}
		if !dup {
			e.paramToSink[fc.obj] = append(hits, sinkHit{param: o.param, desc: sinkDesc})
			e.changed = true
		}
	}
}

func (e *taintEngine) reportTaint(pos token.Pos, sinkDesc string, t taintSet) {
	for _, o := range t {
		if o.concrete() {
			e.report(pos, sinkDesc, o)
		}
	}
}

func (e *taintEngine) report(pos token.Pos, sinkDesc string, o taintOrigin) {
	key := e.p.Fset.Position(pos).String() + "|" + sinkDesc + "|" + o.desc
	if _, ok := e.findings[key]; !ok {
		e.findings[key] = taintFinding{pos: pos, sink: sinkDesc, origin: o}
	}
}

// checkCompositeSink fires when a protected composite literal (an
// engine.Result, a journal entry) contains a tainted element.
func (e *taintEngine) checkCompositeSink(lit *ast.CompositeLit, fc *funcCtx) {
	tv, ok := e.p.TypesInfo.Types[lit]
	if !ok {
		return
	}
	desc, isSink := e.compositeSinkOf(tv.Type)
	if !isSink {
		return
	}
	for _, elt := range lit.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		e.reportOrSummarize(lit.Pos(), desc, e.exprTaint(v, fc), fc)
	}
}

// identObj resolves an identifier to its variable object (uses or defs).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
