// Fixture: map iteration inside the deterministic core.
package sim

func order(m map[string]int) (int, []string) {
	total := 0
	//bitlint:maporder pure count; addition over int is commutative
	for _, v := range m {
		total += v
	}
	var keys []string
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	nums := []int{1, 2, 3}
	for _, v := range nums {
		total += v
	}
	return total, keys
}
