// Fixture: outside the deterministic core map iteration is unrestricted.
package other

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
