// Fixture: mixed atomic/plain access to the same variable or field.
package engine

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

func read(c *counters) int64 {
	return c.hits // want "hits is accessed via sync/atomic"
}

func allAtomic(c *counters) int64 {
	atomic.AddInt64(&c.misses, 1)
	return atomic.LoadInt64(&c.misses)
}

var typed atomic.Int64

func typedUse() int64 {
	typed.Add(1)
	return typed.Load()
}

var legacy int64

func legacyBump() {
	atomic.AddInt64(&legacy, 1)
}

func legacyPeek() int64 {
	//bitlint:atomicmix startup-only read before any goroutine launches
	return legacy
}
