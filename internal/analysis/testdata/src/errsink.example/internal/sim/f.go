// Fixture: discarded durable-path errors in the crash-safety core.
package sim

import (
	"bufio"
	"io"
	"os"
)

type store struct{ f *os.File }

func (s *store) Close() error { return s.f.Close() }

func discards(w *bufio.Writer, f *os.File) {
	w.Flush()    // want "discarded error"
	_ = f.Sync() // want "discarded error"
	f.Close()    // want "discarded error"
}

func useStore(s *store) {
	s.Close() // want "discarded error"
}

func rename(a, b string) {
	os.Rename(a, b) // want "discarded error from os.Rename"
}

func checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func deferred(f *os.File) {
	defer f.Close()
}

func transport(w io.Writer, b []byte) {
	// Interface writers are the transport layer, not the durable path.
	w.Write(b)
}

func suppressedClose(f *os.File) {
	f.Close() //bitlint:errsink error-path cleanup; the caller already holds the open error
}
