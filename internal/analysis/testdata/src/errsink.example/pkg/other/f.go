// Fixture: packages outside internal/{sim,serve,fabric} are exempt from
// the durable-path error contract — no diagnostics expected here.
package other

import "os"

func casualClose(f *os.File) {
	f.Close()
}
