// Fixture: engine.Result is a composite sink — nondeterminism must not
// enter it by literal or by field write.
package engine

import (
	"runtime"
	"time"
)

// Result mirrors the real engine.Result protected type.
type Result struct {
	Rounds  int
	Elapsed int64
}

func build(start time.Time) Result {
	return Result{Rounds: 1, Elapsed: time.Since(start).Nanoseconds()} // want "time.Since flows into engine.Result"
}

func fieldWrite(r *Result) {
	r.Rounds = runtime.NumCPU() // want "runtime.NumCPU flows into engine.Result"
}

func clean(rounds int) Result {
	return Result{Rounds: rounds}
}
