// Fixture: vm.Program.Address content-addresses bytecode through FNV; a
// tainted hash input would give the same program different identities on
// different runs, splitting the protocol registry.
package vm

import (
	"hash/fnv"
	"os"
	"strconv"
	"time"
)

func address(code []byte) uint64 {
	h := fnv.New64a()
	h.Write(code)
	stamp := time.Now().UnixNano()
	h.Write([]byte(strconv.FormatInt(stamp, 10))) // want "time.Now flows into hash input"
	return h.Sum64()
}

func hostSalt() string {
	host, _ := os.Hostname()
	return host
}

func saltedAddress(code []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(hostSalt())) // want "os.Hostname flows into hash input"
	h.Write(code)
	return h.Sum64()
}

func clean(code []byte) uint64 {
	h := fnv.New64a()
	h.Write(code)
	return h.Sum64()
}
