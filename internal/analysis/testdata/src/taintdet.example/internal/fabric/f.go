// Fixture: the explicit-clock idiom is accepted; the ambient read it
// replaces is caught.
package fabric

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Board mirrors the real fabric.Board idiom: every time-dependent method
// takes an explicit now parameter instead of reading the ambient clock.
type Board struct {
	deadline time.Time
	gen      uint64
}

// Lease threads its clock explicitly: time.Time parameters are sanitized
// entry points, so nothing here is tainted even though now reaches both
// a field and a hash fold.
func (b *Board) Lease(now time.Time, ttl time.Duration) uint64 {
	b.deadline = now.Add(ttl)
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", now.UnixNano())
	b.gen = h.Sum64()
	return b.gen
}

// ambient is the violation the idiom exists to replace.
func (b *Board) ambient() {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", time.Now().UnixNano()) // want "time.Now flows into hash input"
	b.gen = h.Sum64()
}
