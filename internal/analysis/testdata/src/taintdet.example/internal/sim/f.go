// Fixture: interprocedural determinism taint into journal and hash sinks.
package sim

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Journal mirrors the real sim.Journal sink shape: Record on a Journal
// type in a package ending internal/sim is a taint sink.
type Journal struct{ lines []string }

func (j *Journal) Record(key, payload string) {
	j.lines = append(j.lines, key+payload)
}

// direct: ambient clock straight into the record.
func direct(j *Journal) {
	stamp := time.Now().String()
	j.Record("k", stamp) // want "time.Now flows into journal record"
}

// wallStamp launders the taint through a helper's return value; the
// per-function summary carries it back to the caller.
func wallStamp() string {
	return time.Now().Format(time.RFC3339)
}

func viaHelper(j *Journal) {
	s := wallStamp()
	j.Record("k", s) // want "time.Now flows into journal record"
}

// explicit-clock idiom: a time.Time parameter is a sanitized entry
// point, so recording values derived from it is sanctioned.
func explicit(j *Journal, now time.Time) {
	j.Record("k", now.Format(time.RFC3339))
}

// pure values stay silent.
func pure(j *Journal, seed int64) {
	j.Record("k", fmt.Sprint(seed))
}

// hashKey: map iteration order must not feed the TaskKey-style FNV fold.
func hashKey(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		fmt.Fprintf(h, "%s", k) // want "map iteration order flows into hash input"
	}
	return h.Sum64()
}
