// Fixture: taint into the serve-layer crash-safety and wire sinks.
package serve

import (
	"io"
	"os"
	"strconv"
)

type jobLog struct{ w io.Writer }

func (l *jobLog) append(line string) error {
	_, err := io.WriteString(l.w, line)
	return err
}

type resultCache struct{ dir string }

func (c *resultCache) put(id string, payload []byte) error { return nil }

func writeJSON(w io.Writer, code int, v any) {}

func record(l *jobLog) {
	host, _ := os.Hostname()
	l.append(host) // want "os.Hostname flows into intent-log record"
}

func publish(c *resultCache, payload []byte) {
	id := strconv.Itoa(os.Getpid())
	c.put(id, payload) // want "os.Getpid flows into result-cache publish"
}

func respond(w io.Writer, m map[string]int) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	writeJSON(w, 200, ks) // want "map iteration order flows into wire payload"
}

func suppressed(l *jobLog) {
	host, _ := os.Hostname()
	//bitlint:taintdet hostname is operator-facing lease metadata, never merged bytes
	l.append(host)
}

func clean(l *jobLog, shard int) {
	l.append(strconv.Itoa(shard))
}
