// Fixture: probability-domain checks against the real rng and protocol
// APIs — constant arguments outside [0,1] and unchecked NaN-capable
// divisions.
package engine

import (
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func draws(g *rng.RNG, x, n float64) int64 {
	total := int64(0)
	if g.Bernoulli(0.5) { // in range: allowed
		total++
	}
	if g.Bernoulli(1.5) { // want "outside"
		total++
	}
	total += g.Binomial(10, -0.25) // want "outside"
	total += g.Binomial(10, x/n)   // want "NaN-capable"
	//bitlint:probok caller clamps x/n to the unit interval upstream
	total += g.Binomial(10, x/n)
	_ = rng.BernoulliThreshold(2)                                    // want "outside"
	_ = protocol.MustNew("r", 1, []float64{0, 1.5}, []float64{0, 1}) // want `rule table entry 1.5`
	_, _ = protocol.NewSymmetric("s", 1, []float64{-0.5, 1})         // want `rule table entry -0.5`
	return total
}
