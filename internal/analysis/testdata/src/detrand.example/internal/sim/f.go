// Fixture: goroutine closures over RNG streams inside a package the
// path-suffix rule classifies as deterministic core. The good cases pin
// the blessed per-shard derivation idioms (SplitN hand-off, worker structs
// owning their stream); the bad cases capture a stream shared with other
// goroutines.
package sim

import (
	"sync"

	"bitspread/internal/rng"
)

// fanOutSplitN is the blessed sharded-engine idiom: per-worker streams are
// derived with SplitN before any goroutine starts, and each closure
// receives its own stream as a parameter — nothing is shared, nothing is
// flagged.
func fanOutSplitN(g *rng.RNG, k int) uint64 {
	streams := g.SplitN(k)
	out := make([]uint64, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int, gg *rng.RNG) {
			defer wg.Done()
			out[i] = gg.Uint64()
		}(i, streams[i])
	}
	wg.Wait()
	return out[0]
}

// shardWorker owns its stream as a struct field, the other blessed shape:
// the closure references the worker, never a bare stream variable.
type shardWorker struct {
	g   *rng.RNG
	out uint64
}

func fanOutWorkers(g *rng.RNG, k int) {
	workers := make([]*shardWorker, k)
	for i, gg := range g.SplitN(k) {
		workers[i] = &shardWorker{g: gg}
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *shardWorker) {
			defer wg.Done()
			w.out = w.g.Uint64()
		}(w)
	}
	wg.Wait()
}

// fanOutShared hammers the one parent stream from every goroutine: the
// draw order depends on the scheduler, not on the seed.
func fanOutShared(g *rng.RNG, k int) {
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = g.Uint64() // want "captures shared RNG stream"
		}()
	}
	wg.Wait()
}

// fanOutLocal shows the declaration site does not matter, the sharing
// does: a stream created in the enclosing function and referenced by the
// spawned literals is still one stream consumed concurrently.
func fanOutLocal(k int) {
	local := rng.New(1)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = local.Uint64() // want "captures shared RNG stream"
		}()
	}
	wg.Wait()
}
