// Fixture: ambient randomness and wall-clock reads inside a package the
// path-suffix rule classifies as deterministic core.
package engine

import (
	crand "crypto/rand" // want `import of "crypto/rand" in deterministic package`
	"math/rand"         // want `import of "math/rand" in deterministic package`
	"time"
)

func ambient() (int64, time.Duration) {
	t0 := time.Now() // want "time.Now in deterministic package"
	buf := make([]byte, 8)
	_, _ = crand.Read(buf)
	n := rand.Int63()
	return n, time.Since(t0) // want "time.Since in deterministic package"
}
