// Fixture: the evolutionary search must replay byte-identically from its
// seed — mutation and tournament draws come from the repo RNG, never the
// ambient generator, and generations are counted, not timed.
package evolve

import (
	"math/rand" // want `import of "math/rand" in deterministic package`
	"time"
)

func mutateBudget(start time.Time) bool {
	if rand.Float64() < 0.5 {
		return false
	}
	return time.Since(start) < time.Second // want "time.Since in deterministic package"
}
