// Fixture: the bytecode VM is deterministic core — evaluation is a pure
// function of (program, k, b), so ambient randomness and clock reads are
// banned outright.
package vm

import (
	"math/rand" // want `import of "math/rand" in deterministic package`
	"time"
)

func jitterGas() int64 {
	deadline := time.Now() // want "time.Now in deterministic package"
	_ = deadline
	return 4096 + rand.Int63n(16)
}
