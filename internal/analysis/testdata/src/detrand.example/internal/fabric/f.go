// Fixture: the distributed-sweep fabric is deterministic core — shard
// assignment and shard computation must be pure functions of (spec,
// shard), so wall-clock reads are banned outright (lease expiry is the
// coordinator's business, passed in as an explicit time.Time) and a
// goroutine fanning out over partitions must not share an RNG stream.
package fabric

import (
	"sync"
	"time"

	"bitspread/internal/rng"
)

// leaseExpired shows the blessed clock idiom: the fabric never reads
// the wall clock itself — callers thread `now` through explicitly, so
// board decisions replay identically in tests.
func leaseExpired(expiry, now time.Time) bool {
	return now.After(expiry)
}

// leaseExpiredAmbient reaches for the ambient clock instead; inside the
// deterministic core that is an error with no suppression.
func leaseExpiredAmbient(expiry time.Time) bool {
	return time.Now().After(expiry) // want "time.Now in deterministic package"
}

// runPartitions is the blessed fan-out: one stream per partition is
// derived with SplitN before any goroutine starts and handed over as a
// parameter, so replica draws cannot depend on the scheduler.
func runPartitions(g *rng.RNG, parts int) []uint64 {
	streams := g.SplitN(parts)
	out := make([]uint64, parts)
	var wg sync.WaitGroup
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func(i int, gg *rng.RNG) {
			defer wg.Done()
			out[i] = gg.Uint64()
		}(i, streams[i])
	}
	wg.Wait()
	return out
}

// runPartitionsShared lets every partition goroutine draw from the one
// parent stream: the (task, replica) results would depend on which
// worker got scheduled first, breaking merge byte-identity.
func runPartitionsShared(g *rng.RNG, parts int) {
	var wg sync.WaitGroup
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = g.Uint64() // want "captures shared RNG stream"
		}()
	}
	wg.Wait()
}
