// Fixture: outside the deterministic core wall-clock reads are metadata,
// allowed only with a //bitlint:wallclock justification; ambient
// randomness imports are not detrand's concern here.
package tool

import (
	"math/rand"
	"time"
)

func timestamps() int64 {
	a := time.Now().Unix() // want "time.Now outside the deterministic core"
	b := time.Now().Unix() //bitlint:wallclock run timestamp is metadata, not simulation state
	//bitlint:wallclock
	c := time.Now().Unix() // want "needs a justification" "time.Now outside the deterministic core"
	return a + b + c + rand.Int63()
}
