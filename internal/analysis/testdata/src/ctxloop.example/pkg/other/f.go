// Fixture: packages outside internal/{serve,fabric,sim,cli} are exempt
// from the cancellation contract — no diagnostics expected here.
package other

func spinForever(work chan int) {
	for {
		<-work
	}
}
