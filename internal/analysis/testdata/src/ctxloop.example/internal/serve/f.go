// Fixture: the cancellation-propagation contract in the service layer.
package serve

import "context"

func busyLoop(work chan int) {
	for { // want "unbounded for-loop in busyLoop observes no cancellation"
		<-work
	}
}

func ctxLoop(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-work:
		}
	}
}

func quitLoop(quit chan struct{}, work chan int) {
	for {
		select {
		case <-quit:
			return
		case <-work:
		}
	}
}

func errLoop(ctx context.Context, step func()) {
	for {
		if ctx.Err() != nil {
			return
		}
		step()
	}
}

func bounded(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func sever(ctx context.Context) {
	helper(context.Background()) // want "sever receives a context.Context but passes context.Background"
}

func nilDefault(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	helper(ctx)
}

func helper(ctx context.Context) {}

func suppressedLoop(work chan int) {
	//bitlint:ctxloop drained by closing the work channel at shutdown; no context reaches this goroutine
	for {
		if _, ok := <-work; !ok {
			return
		}
	}
}
