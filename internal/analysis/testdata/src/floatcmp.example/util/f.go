// Fixture: exact float comparisons — flagged everywhere in production
// code, with the NaN self-test, constant folds, int comparisons, and
// annotated sentinels allowed.
package util

import "math"

const eps = 1e-9

func cmp(a, b float64, xs []float64) int {
	n := 0
	if a == b { // want "exact float comparison"
		n++
	}
	if b != 0 { // want "exact float comparison"
		n++
	}
	if a != a { // NaN self-test: allowed without annotation
		n++
	}
	if 0.5 == 0.25*2 { // both operands constant-folded: allowed
		n++
	}
	//bitlint:floatexact table sentinel written verbatim; bit-exact by construction
	if xs[0] == 1 {
		n++
	}
	//bitlint:floatexact
	if a == 0 { // want "needs a justification" "exact float comparison"
		n++
	}
	if math.Abs(a-b) < eps { // tolerance comparison: allowed
		n++
	}
	if len(xs) == 0 { // integer comparison: allowed
		n++
	}
	return n
}
