// Fixture: exported Run* entry points in an engine-suffixed package must
// reach a validate/Validate call before looping or spawning goroutines.
package engine

import "errors"

type Config struct{ N int }

func (c *Config) validate() error {
	if c.N < 2 {
		return errors.New("bad config")
	}
	return nil
}

type Result struct{ Rounds int }

func RunGood(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	var r Result
	for i := 0; i < cfg.N; i++ {
		r.Rounds++
	}
	return r, nil
}

// RunDelegate validates through a same-package callee, the sim.Run ->
// RunContext pattern.
func RunDelegate(cfg Config) (Result, error) {
	return runInner(cfg)
}

func runInner(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	return Result{}, nil
}

func RunBad(cfg Config) Result { // want "never reaches a Config validate"
	var r Result
	for i := 0; i < cfg.N; i++ {
		r.Rounds++
	}
	return r
}

func RunLate(cfg Config) (Result, error) {
	var r Result
	for i := 0; i < cfg.N; i++ { // want "spawns work before validating"
		r.Rounds++
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	return r, nil
}

func RunSpawnBad(cfg Config) error { // want "never reaches a Config validate"
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	return nil
}

// unexported and non-Run functions are not entry points.
func runHelper(cfg Config) int { return cfg.N }

func Step(cfg Config) int { return cfg.N }
