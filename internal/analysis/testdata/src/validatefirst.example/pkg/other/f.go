// Fixture: Run* functions outside internal/engine and internal/sim are
// not simulation entry points.
package other

func RunAnything(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
