package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags exact floating-point equality in production code. The
// repo's numeric layers (bias constants from fix-point iterations,
// Sturm-sequence root isolation, adoption-probability tables) converge to
// values that are only meaningful to a tolerance; `==`/`!=` on them
// encodes an accident of rounding as a contract. Every exact comparison
// must either go through a tolerance helper or carry a
// //bitlint:floatexact justification naming why exactness is correct
// (sentinel values like 0 and 1 written verbatim into a table, equality
// with a value produced by the very same expression, IEEE bit tricks).
//
// Two idioms pass without annotation: comparisons where both operands are
// untyped constants (the compiler folds them; nothing is measured at run
// time) and the self-comparison NaN test `x != x` / `x == x`, which is
// exact by construction.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= on floating-point operands outside tests: use a tolerance helper or justify the exact " +
		"comparison with //bitlint:floatexact <reason>; the NaN self-test x != x is always allowed",
	Run: runFloatCmp,
}

func runFloatCmp(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := p.TypesInfo.Types[be.X]
			yt, yok := p.TypesInfo.Types[be.Y]
			if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
				return true
			}
			// Both sides compile-time constants: the comparison is folded,
			// no runtime rounding is involved.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			// The NaN self-test idiom.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			p.ReportOrSuppress(be.Pos(), "floatexact",
				"exact float comparison %s %s %s: use a tolerance or justify with //bitlint:floatexact <reason>",
				types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
	return nil
}
