package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the shared interprocedural layer of the suite: a
// package-local call graph over the ASTs the loader already holds, plus
// the reachability fixpoint that validatefirst pioneered in PR 4 and that
// the whole-program analyzers (taintdet, ctxloop) now reuse. The graph is
// deliberately package-scoped — dependency bodies are not loaded (they
// exist only as gc export data), so cross-package contracts are expressed
// as curated source/sink/propagation tables on the analyzers instead
// (taint.go).

// callGraph indexes one package's function and method declarations and
// resolves calls between them.
type callGraph struct {
	info *types.Info
	pkg  *types.Package
	// decls maps each function/method object to its declaration.
	decls map[types.Object]*ast.FuncDecl
	// launched marks functions started on their own goroutine somewhere
	// in the package (`go f(...)` / `go r.m(...)` on a named callee).
	launched map[types.Object]bool
}

// newCallGraph builds the graph for the pass's package.
func newCallGraph(p *Pass) *callGraph {
	g := &callGraph{
		info:     p.TypesInfo,
		pkg:      p.Pkg,
		decls:    make(map[types.Object]*ast.FuncDecl),
		launched: make(map[types.Object]bool),
	}
	eachFunc(p, func(fd *ast.FuncDecl) {
		if obj := p.TypesInfo.Defs[fd.Name]; obj != nil {
			g.decls[obj] = fd
		}
	})
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fn := calleeFunc(p.TypesInfo, gs.Call); fn != nil && fn.Pkg() == p.Pkg {
				g.launched[fn] = true
			}
			return true
		})
	}
	return g
}

// callee resolves a call to its same-package declaration, or nil for
// external, dynamic, and built-in callees.
func (g *callGraph) callee(call *ast.CallExpr) *ast.FuncDecl {
	fn := calleeFunc(g.info, call)
	if fn == nil || fn.Pkg() != g.pkg {
		return nil
	}
	return g.decls[fn]
}

// reaches reports whether fd's body — walking same-package calls
// transitively — contains a node satisfying pred. Cycles are broken by
// seen; pass a fresh map (or one pre-seeded with declarations to
// exclude). This is the generalized form of validatefirst's "does this
// entry point reach a Validate call" fixpoint.
func (g *callGraph) reaches(fd *ast.FuncDecl, seen map[*ast.FuncDecl]bool, pred func(ast.Node) bool) bool {
	if fd == nil || fd.Body == nil || seen[fd] {
		return false
	}
	seen[fd] = true
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if pred(n) {
			found = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := g.callee(call); callee != nil && g.reaches(callee, seen, pred) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
