package analysis

import (
	"go/ast"
	"go/types"
)

// TaintDet is the whole-program determinism analyzer: it proves, by
// interprocedural dataflow (taint.go), that values derived from
// nondeterministic sources — wall clocks, PIDs, host identity, CPU
// counts, ambient randomness, map iteration order — never flow into the
// artifacts the byte-identity proofs stand on: sim.Journal records, the
// serve intent log and result cache, TaskKey/Assign hash inputs in the
// deterministic core, and engine.Result values.
//
// detrand bans the *calls* inside the deterministic core; taintdet
// complements it across the whole tree by following the *values*: a
// timestamp read legitimately in cmd/bitspreadd (suppressed wallclock
// metadata) must still never end up inside a journal line, because the
// fabric's merge proof (DESIGN §14) compares those lines byte-for-byte
// across workers with different clocks.
//
// The explicit-clock idiom is recognized as sanitized: a callee parameter
// of type time.Time (or func() time.Time) is a deliberate injection
// point — fabric.Board's `now` arguments — and taint never crosses it.
var TaintDet = &Analyzer{
	Name: "taintdet",
	Doc: "nondeterministic values (time.Now/Since/Until, os.Getpid, runtime.NumCPU/GOMAXPROCS, math/crypto-rand, " +
		"map iteration order) must not flow into journal records, intent-log/result-cache writes, TaskKey/Assign " +
		"hash inputs, or engine.Result values; explicit time.Time parameters are sanitized entry points; " +
		"justify intended flows with //bitlint:taintdet <reason>",
	Run: runTaintDet,
}

// taintSources maps package path → function name → origin description.
// Any call into math/rand or crypto/rand is a source regardless of name.
var taintSources = map[string]map[string]string{
	"time": {
		"Now":   "time.Now",
		"Since": "time.Since",
		"Until": "time.Until",
	},
	"os": {
		"Getpid":   "os.Getpid",
		"Getppid":  "os.Getppid",
		"Hostname": "os.Hostname",
	},
	"runtime": {
		"NumCPU":       "runtime.NumCPU",
		"GOMAXPROCS":   "runtime.GOMAXPROCS",
		"NumGoroutine": "runtime.NumGoroutine",
	},
}

// ambientRandPkgs taint every call: none of their results are seedable
// reproductions of the repo's rng streams.
var ambientRandPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func taintSourceOf(p *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	pkg := funcPkgPath(fn)
	if ambientRandPkgs[pkg] {
		return pkg + "." + fn.Name(), true
	}
	if names, ok := taintSources[pkg]; ok {
		if desc, ok := names[fn.Name()]; ok {
			return desc, true
		}
	}
	return "", false
}

// taintSinkOf classifies the calls whose arguments must stay
// deterministic.
func taintSinkOf(p *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	recv := recvTypeName(fn)
	switch {
	// sim.Journal.Record: the checkpoint line every byte-identity proof
	// replays.
	case fn.Name() == "Record" && recv == "Journal" && isPkgSuffix(funcPkgPath(fn), "internal/sim"):
		return "journal record", true
	// serve's crash-safety surfaces: the fsynced intent log and the
	// content-addressed result cache.
	case fn.Name() == "append" && recv == "jobLog" && isPkgSuffix(funcPkgPath(fn), "internal/serve"):
		return "intent-log record", true
	case fn.Name() == "put" && recv == "resultCache" && isPkgSuffix(funcPkgPath(fn), "internal/serve"):
		return "result-cache publish", true
	// serve's wire responses: handlers answer workers whose shard
	// assignment must not depend on coordinator-local nondeterminism.
	case fn.Name() == "writeJSON" && isPkgSuffix(funcPkgPath(fn), "internal/serve"):
		return "wire payload", true
	}
	// Hash-state writes in the deterministic core: TaskKey and
	// fabric.Assign fold their inputs through FNV — a tainted input there
	// silently reshuffles shard ownership or journal keys.
	if IsDeterministicPkg(p.Pkg.Path()) && len(call.Args) > 0 {
		if funcPkgPath(fn) == "fmt" && (fn.Name() == "Fprintf" || fn.Name() == "Fprint" || fn.Name() == "Fprintln") {
			if isHashType(p, call.Args[0]) {
				return "hash input (TaskKey/Assign)", true
			}
		}
		if fn.Name() == "Write" || fn.Name() == "Sum" {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isHashType(p, sel.X) {
				return "hash input (TaskKey/Assign)", true
			}
		}
	}
	return "", false
}

// isHashType reports whether the expression's static type is one of the
// hash package's digest interfaces (hash.Hash, Hash32, Hash64).
func isHashType(p *Pass, x ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "hash" {
		return false
	}
	switch obj.Name() {
	case "Hash", "Hash32", "Hash64":
		return true
	}
	return false
}

// recvTypeName returns the name of a method's receiver type ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// taintCompositeSink protects engine.Result: a Result literal or field
// write built from tainted data corrupts every downstream comparison.
func taintCompositeSink(p *Pass, t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() == "Result" && obj.Pkg() != nil && isPkgSuffix(obj.Pkg().Path(), "internal/engine") {
		return "engine.Result", true
	}
	return "", false
}

// sanitizedClockParam blesses the explicit-clock idiom: threading a
// time.Time (or a clock function) as a parameter is the contract's
// sanctioned alternative to ambient reads.
func sanitizedClockParam(t types.Type) bool {
	if sig, ok := t.Underlying().(*types.Signature); ok {
		// func() time.Time clock injectors (serve's Options.now).
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			t = sig.Results().At(0).Type()
		} else {
			return false
		}
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func runTaintDet(p *Pass) error {
	eng := newTaintEngine(p, taintConfig{
		source:         taintSourceOf,
		sink:           taintSinkOf,
		compositeSink:  taintCompositeSink,
		sanitizedParam: sanitizedClockParam,
		mapRange:       true,
	})
	for _, f := range eng.run() {
		p.ReportOrSuppress(f.pos, "taintdet",
			"%s flows into %s (entered at %s): the byte-identity proofs require this value to be a pure function "+
				"of (seed, Config, Shards); thread it explicitly or justify with //bitlint:taintdet <reason>",
			f.origin.desc, f.sink, p.Fset.Position(f.origin.pos))
	}
	return nil
}
