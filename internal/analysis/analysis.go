// Package analysis is the repo's static-contract suite ("bitlint"): a set
// of analyzers that machine-enforce the invariants every simulation result
// rests on but the compiler cannot see — engines deterministic in
// (seed, Config, Shards), all randomness through internal/rng, adoption
// probabilities in [0, 1] with the Proposition 3 structure, and entry
// points that validate their Config before spawning work.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is self-contained: the container has no
// module proxy access, so loading is driven by `go list -deps -export`
// plus the standard library's gc export-data importer instead of
// go/packages. Analyzers written here keep the x/tools style and could be
// ported verbatim if the dependency ever becomes available.
//
// Suppression: a diagnostic can be silenced — where the analyzer allows
// it — by a justification comment on the offending line or the line
// directly above:
//
//	x := a / b //bitlint:probok denominator checked non-zero above
//
// The directive name is analyzer-specific (floatexact, wallclock,
// maporder, probok) and the free-text reason is mandatory: an annotation
// without a reason is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It deliberately mirrors
// x/tools/go/analysis.Analyzer so checks read like standard vet passes.
type Analyzer struct {
	// Name is the vet-style identifier used in diagnostics and -json keys.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// diags accumulates reports; the driver collects them after Run.
	diags []Diagnostic
	// directives maps filename -> line -> parsed //bitlint: directives.
	directives map[string]map[int][]directive
}

// Diagnostic is one finding, positioned in the fileset of the pass that
// produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed is true when a matching //bitlint: justification covers
	// the finding; suppressed diagnostics are reported by -json mode (and
	// by -show-suppressed) but do not fail the build.
	Suppressed bool
	// Reason is the justification text of the suppressing directive.
	Reason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //bitlint:<name> <reason> comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
}

// directivePrefix introduces a suppression/justification comment.
const directivePrefix = "//bitlint:"

// buildDirectives indexes every //bitlint: comment in the pass's files by
// file and line so analyzers can query them in O(1).
func (p *Pass) buildDirectives() {
	p.directives = make(map[string]map[int][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, reason := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				posn := p.Fset.Position(c.Pos())
				byLine := p.directives[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					p.directives[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line],
					directive{name: name, reason: reason, pos: c.Pos()})
			}
		}
	}
}

// suppression looks for a //bitlint:<name> directive covering pos: on the
// same line or the line immediately above. It returns the justification
// text and whether a directive was found. A directive with an empty
// reason is reported as its own diagnostic and does not suppress.
func (p *Pass) suppression(pos token.Pos, name string) (string, bool) {
	if p.directives == nil {
		p.buildDirectives()
	}
	posn := p.Fset.Position(pos)
	byLine := p.directives[posn.Filename]
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, d := range byLine[line] {
			if d.name != name {
				continue
			}
			if d.reason == "" {
				p.Reportf(pos, "%s%s directive needs a justification: %s%s <reason>",
					directivePrefix, name, directivePrefix, name)
				continue
			}
			return d.reason, true
		}
	}
	return "", false
}

// ReportOrSuppress records the diagnostic, marking it suppressed when a
// //bitlint:<directive> justification covers pos.
func (p *Pass) ReportOrSuppress(pos token.Pos, directiveName, format string, args ...interface{}) {
	d := Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if reason, ok := p.suppression(pos, directiveName); ok {
		d.Suppressed = true
		d.Reason = reason
	}
	p.diags = append(p.diags, d)
}

// deterministicPkgs are the package-path suffixes whose code must be a
// pure function of (seed, Config, Shards): the engines, the protocol
// algebra, the fault schedules, the Monte-Carlo runner, the RNG itself,
// the numeric layers (bias constants, Markov chains) whose outputs
// experiments compare across runs, and the sweep fabric, whose shard
// assignment and merge must replay byte-identically (lease clocks are
// threaded in as explicit time.Time arguments, never read ambiently).
//
// Membership audit (bitlint v2): fabric IS listed — its Assign/merge
// path is part of the byte-identity proof and board.go already threads
// every clock explicitly, so detrand/taintdet hold with zero
// suppressions there. sweep and serve are deliberately NOT listed:
// sweep's lease arbitration and serve's HTTP coordinator legitimately
// own wall-clock policy (lease expiry, retry backoff, heartbeats) via
// injected clocks, so a package-wide ambient-call ban would be a
// suppression farm. Their determinism obligations are instead carried
// value-wise by taintdet (nondeterminism must not reach journals,
// intent logs, result caches, or wire payloads) and structurally by
// ctxloop/errsink.
var deterministicPkgs = []string{
	"internal/engine",
	"internal/protocol",
	"internal/fault",
	"internal/sim",
	"internal/rng",
	"internal/bias",
	"internal/markov",
	"internal/fabric",
	// vm and evolve joined with the bytecode engine: Eval must be a pure
	// function of (program, k, b) for content-addressed protocol identity,
	// and the evolutionary search replays byte-identically from its seed.
	"internal/vm",
	"internal/evolve",
}

// IsDeterministicPkg reports whether the import path belongs to the
// deterministic core. Matching is by path suffix so analysistest fixtures
// under synthetic module paths participate in the same rules.
func IsDeterministicPkg(path string) bool {
	for _, s := range deterministicPkgs {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// All returns the full bitlint suite in stable order: the five local
// analyzers from v1 (detrand, maporder, floatcmp, probrange,
// validatefirst) plus the four whole-program contract analyzers of v2
// (taintdet, ctxloop, errsink, atomicmix).
func All() []*Analyzer {
	as := []*Analyzer{
		DetRand, MapOrder, FloatCmp, ProbRange, ValidateFirst,
		TaintDet, CtxLoop, ErrSink, AtomicMix,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// RunAnalyzers applies every analyzer to the package and returns the
// combined diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
