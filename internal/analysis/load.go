package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked, non-test view of a Go package: what the
// analyzers operate on. Test files are deliberately excluded — every
// bitlint contract is scoped to production code, and the dynamic suites
// (χ², fuzz) are free to compare floats exactly or consult wall clocks.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir and decodes the
// package stream. -export makes the go command compile each package and
// report the path of its export data, which is what lets the loader
// type-check offline with the standard library's gc importer: no module
// proxy, no x/tools.
func goList(dir string, patterns ...string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportSet maps import paths to gc export-data files, feeding the
// lookup-based importer. One set is shared across many type-check calls
// (all target packages, every analysistest fixture) so each dependency is
// imported once.
type ExportSet struct {
	files map[string]string
	imp   types.ImporterFrom
	fset  *token.FileSet
}

// NewExportSet resolves the transitive dependencies of patterns in dir
// and returns a set able to import any of them from export data.
func NewExportSet(fset *token.FileSet, dir string, patterns ...string) (*ExportSet, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return newExportSet(fset, pkgs), nil
}

func newExportSet(fset *token.FileSet, pkgs []listedPkg) *ExportSet {
	s := &ExportSet{files: make(map[string]string, len(pkgs)), fset: fset}
	for _, p := range pkgs {
		if p.Export != "" {
			s.files[p.ImportPath] = p.Export
		}
	}
	s.imp = importer.ForCompiler(fset, "gc", s.lookup).(types.ImporterFrom)
	return s
}

// lookup feeds export data to the gc importer.
func (s *ExportSet) lookup(path string) (io.ReadCloser, error) {
	f, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q (not in the dependency closure)", path)
	}
	return os.Open(f)
}

// TypeCheck parses and type-checks one package's files against the set.
func (s *ExportSet) TypeCheck(pkgPath string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(s.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: s.imp}
	tpkg, err := conf.Check(pkgPath, s.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      s.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Load lists patterns in dir (any directory inside the module) and
// returns the type-checked target packages, skipping pure-test packages.
// Dependencies are imported from gc export data, so the only toolchain
// requirement is a working `go build`.
func Load(dir string, patterns ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	s := newExportSet(fset, listed)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		names := make([]string, len(p.GoFiles))
		for i, g := range p.GoFiles {
			names[i] = filepath.Join(p.Dir, g)
		}
		pkg, err := s.TypeCheck(p.ImportPath, names)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}
