package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ValidateFirst enforces the fail-fast contract on simulation entry
// points: every exported Run* function in internal/engine and
// internal/sim must reach a Config.Validate-style check (directly or
// through a same-package callee, e.g. sim.Run delegating to RunContext)
// before it spawns goroutines or enters its round loop. The contract is
// what lets the sim layer reject a bad Task once instead of panicking in
// every replica, and what keeps Perturber hooks from ever seeing an
// inconsistent (N, X0, Z) triple. The check rides the shared
// package-local call graph (callgraph.go): an entry point is compliant
// when some call chain reaches a function whose body calls
// validate/Validate, and the first such call site precedes the first `go`
// statement and the first loop in the entry's own body.
var ValidateFirst = &Analyzer{
	Name: "validatefirst",
	Doc: "exported engine.Run*/sim.Run* entry points must reach a Config validate/Validate call (transitively, " +
		"within the package) before spawning goroutines or looping over rounds/replicas",
	Run: runValidateFirst,
}

func runValidateFirst(p *Pass) error {
	path := p.Pkg.Path()
	if !isPkgSuffix(path, "internal/engine") && !isPkgSuffix(path, "internal/sim") {
		return nil
	}

	g := newCallGraph(p)
	isValidate := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isValidateCall(call)
	}

	eachFunc(p, func(fd *ast.FuncDecl) {
		if fd.Recv != nil || !fd.Name.IsExported() || !strings.HasPrefix(fd.Name.Name, "Run") {
			return
		}
		// Position of the first call whose chain reaches validation.
		firstOK := token.Pos(-1)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if firstOK >= 0 {
				return false
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if isValidateCall(call) {
				firstOK = call.Pos()
				return false
			}
			if callee := g.callee(call); callee != nil &&
				g.reaches(callee, map[*ast.FuncDecl]bool{fd: true}, isValidate) {
				firstOK = call.Pos()
				return false
			}
			return true
		})
		if firstOK < 0 {
			p.Reportf(fd.Pos(),
				"%s is an exported simulation entry point but never reaches a Config validate/Validate call",
				fd.Name.Name)
			return
		}
		// Work (goroutines, round/replica loops) must not precede it.
		if work := firstWork(fd.Body); work != nil && work.Pos() < firstOK {
			p.Reportf(work.Pos(),
				"%s spawns work before validating its Config (validate call at %s)",
				fd.Name.Name, p.Fset.Position(firstOK))
		}
	})
	return nil
}

// isValidateCall matches calls to a function or method named validate or
// Validate, the repo's configuration-check convention.
func isValidateCall(call *ast.CallExpr) bool {
	var name string
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return false
	}
	return name == "validate" || name == "Validate"
}

// firstWork returns the earliest goroutine launch or loop in body, if any.
func firstWork(body *ast.BlockStmt) ast.Node {
	var first ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.ForStmt, *ast.RangeStmt:
			if first == nil || n.Pos() < first.Pos() {
				first = n
			}
			return false
		}
		return true
	})
	return first
}
