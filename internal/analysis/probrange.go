package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ProbRange checks, at compile time, the probability-domain half of the
// protocol formalism: g_n^[b](k) values and every p handed to the RNG's
// Bernoulli/Binomial samplers are probabilities, so constant arguments
// outside [0, 1] are definite bugs (protocol.New would reject them at run
// time; the lint rejects them before anything runs). Non-constant
// arguments that contain a floating-point division are flagged as
// NaN-capable — 0/0 and x/0 both sail through a `p < 0 || p > 1` check —
// unless the site carries a //bitlint:probok justification naming the
// guard (clamped upstream, denominator proved non-zero, value produced by
// AdoptProb which clamps internally).
var ProbRange = &Analyzer{
	Name: "probrange",
	Doc: "constant probability arguments to rng.Binomial/Bernoulli* and protocol rule tables must lie in [0,1]; " +
		"NaN-capable expressions (containing float division) passed as probabilities need a //bitlint:probok " +
		"justification of the range guard",
	Run: runProbRange,
}

// probParams maps rng.RNG methods and rng package functions to the
// indices of their probability-valued arguments.
var probParams = map[string][]int{
	"Binomial":           {1},
	"Bernoulli":          {0},
	"BernoulliThreshold": {0},
}

// tableParams maps protocol constructors to the indices of their
// []float64 probability-table arguments.
var tableParams = map[string][]int{
	"New":          {2, 3},
	"MustNew":      {2, 3},
	"NewSymmetric": {2},
}

func runProbRange(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch {
			case isPkgSuffix(funcPkgPath(fn), "internal/rng"):
				for _, i := range probParams[fn.Name()] {
					if i < len(call.Args) {
						checkProbExpr(p, fn.Name(), call.Args[i])
					}
				}
			case isPkgSuffix(funcPkgPath(fn), "internal/protocol"):
				for _, i := range tableParams[fn.Name()] {
					if i < len(call.Args) {
						checkProbTable(p, fn.Name(), call.Args[i])
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkProbExpr vets one probability-valued argument.
func checkProbExpr(p *Pass, callee string, arg ast.Expr) {
	tv, ok := p.TypesInfo.Types[arg]
	if !ok {
		return
	}
	if tv.Value != nil {
		if v, bad := constOutsideUnit(tv.Value); bad {
			p.Reportf(arg.Pos(),
				"constant probability %v passed to %s is outside [0,1]", v, callee)
		}
		return
	}
	if div := findFloatDivision(p.TypesInfo, arg); div != nil {
		p.ReportOrSuppress(arg.Pos(), "probok",
			"NaN-capable probability for %s: %s divides floats and is passed unchecked; "+
				"clamp it or justify with //bitlint:probok <reason>",
			callee, types.ExprString(div))
	}
}

// checkProbTable vets a composite-literal probability table element by
// element; non-literal tables are built at run time and left to
// protocol.New's own validation.
func checkProbTable(p *Pass, callee string, arg ast.Expr) {
	cl, ok := ast.Unparen(arg).(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		tv, ok := p.TypesInfo.Types[el]
		if !ok || tv.Value == nil {
			continue
		}
		if v, bad := constOutsideUnit(tv.Value); bad {
			p.Reportf(el.Pos(),
				"rule table entry %v passed to protocol.%s is outside [0,1]", v, callee)
		}
	}
}

// constOutsideUnit reports whether a numeric constant lies outside the
// closed unit interval.
func constOutsideUnit(v constant.Value) (float64, bool) {
	fv := constant.ToFloat(v)
	if fv.Kind() != constant.Float && fv.Kind() != constant.Int {
		return 0, false
	}
	f, _ := constant.Float64Val(fv)
	return f, f < 0 || f > 1
}

// findFloatDivision returns the first floating-point division inside e
// whose value is not itself constant-folded, or nil.
func findFloatDivision(info *types.Info, e ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.QUO {
			return true
		}
		tv, ok := info.Types[be]
		if ok && tv.Value == nil && isFloat(tv.Type) {
			found = be
			return false
		}
		return true
	})
	return found
}
