package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix catches the half-converted atomic: a variable or struct field
// that is accessed through sync/atomic in one place (atomic.AddInt64(&x, …))
// and read or written plainly somewhere else. The mixed pattern is a data
// race the -race suites only catch when both sides actually interleave
// under test; the analyzer catches it structurally. The repo's own
// convention is typed atomics (atomic.Int64/Int32/Bool), which make the
// mix unrepresentable — this analyzer exists to keep it that way when new
// counters are added under deadline pressure.
//
// Field-sensitive, instance-insensitive: `&s.hits` passed to sync/atomic
// marks the field `hits`, and any plain `s2.hits` access anywhere in the
// package trips the report.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a variable or field accessed via sync/atomic functions in one place must not be accessed plainly " +
		"elsewhere in the package; migrate to atomic.Int64-style typed atomics or justify with " +
		"//bitlint:atomicmix <reason>",
	Run: runAtomicMix,
}

func runAtomicMix(p *Pass) error {
	// First pass: every `&x` (or `&s.f`) handed to a sync/atomic function
	// marks x (or the field f) as atomically accessed; the call's source
	// range is excluded from the plain-use scan.
	atomicUse := map[types.Object]token.Pos{}
	type span struct{ lo, hi token.Pos }
	var atomicCalls []span
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			atomicCalls = append(atomicCalls, span{call.Pos(), call.End()})
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := baseObject(p, un.X); obj != nil {
					if _, seen := atomicUse[obj]; !seen {
						atomicUse[obj] = call.Pos()
					}
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return nil
	}

	inAtomicCall := func(pos token.Pos) bool {
		for _, s := range atomicCalls {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Second pass: any use of a marked object outside the atomic calls is
	// the race. Report the first plain use per object, in source order.
	type hit struct {
		obj types.Object
		pos token.Pos
	}
	firstPlain := map[types.Object]token.Pos{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if _, marked := atomicUse[obj]; !marked || inAtomicCall(id.Pos()) {
				return true
			}
			if prev, seen := firstPlain[obj]; !seen || id.Pos() < prev {
				firstPlain[obj] = id.Pos()
			}
			return true
		})
	}
	hits := make([]hit, 0, len(firstPlain))
	for obj, pos := range firstPlain {
		hits = append(hits, hit{obj, pos})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	for _, h := range hits {
		p.ReportOrSuppress(h.pos, "atomicmix",
			"%s is accessed via sync/atomic (at %s) but plainly here: mixed access is a data race; use a typed "+
				"atomic (atomic.Int64 et al.) or justify with //bitlint:atomicmix <reason>",
			h.obj.Name(), p.Fset.Position(atomicUse[h.obj]))
	}
	return nil
}

// baseObject resolves the variable or field object an addressable
// expression denotes: `x` → x's object, `s.f`/`s.ptr.f` → the field f.
func baseObject(p *Pass, x ast.Expr) types.Object {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[e.Sel]
	case *ast.IndexExpr:
		return baseObject(p, e.X)
	}
	return nil
}
