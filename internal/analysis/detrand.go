package analysis

import (
	"go/ast"
	"strconv"
)

// DetRand enforces the randomness and wall-clock discipline behind the
// "deterministic in (seed, Config, Shards)" engine contract (DESIGN §2,
// §8): inside the deterministic core every random draw must flow through
// *rng.RNG (a seeded SplitMix64/xoshiro hierarchy), so importing
// math/rand, math/rand/v2, or crypto/rand there is an error with no
// suppression — as is consulting the wall clock via time.Now/Since/Until,
// which would thread scheduler state into simulation state. Outside the
// core (the cmd tools, the experiment drivers) wall-clock reads are
// legitimate metadata — timestamps in JSON records, progress lines — but
// must carry a //bitlint:wallclock justification so a reviewer can see
// the value never feeds a Result.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid ambient randomness and wall-clock reads: math/rand, crypto/rand, and time.Now/Since/Until " +
		"are banned in the deterministic packages (randomness only via *rng.RNG); elsewhere wall-clock reads " +
		"need a //bitlint:wallclock justification",
	Run: runDetRand,
}

// bannedRandImports are the ambient randomness sources that break seed
// reproducibility (or, for crypto/rand, cannot be seeded at all).
var bannedRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// wallClockFuncs are the time-package reads that leak scheduler state.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetRand(p *Pass) error {
	det := IsDeterministicPkg(p.Pkg.Path())
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if det && bannedRandImports[path] {
				p.Reportf(imp.Pos(),
					"import of %q in deterministic package %s: all randomness must flow through *rng.RNG",
					path, p.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil || funcPkgPath(fn) != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			if det {
				p.Reportf(call.Pos(),
					"time.%s in deterministic package %s: engines must be pure functions of (seed, Config, Shards)",
					fn.Name(), p.Pkg.Path())
			} else {
				p.ReportOrSuppress(call.Pos(), "wallclock",
					"time.%s outside the deterministic core: justify with //bitlint:wallclock <reason> that the value is metadata, not simulation state",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
