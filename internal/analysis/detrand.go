package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DetRand enforces the randomness and wall-clock discipline behind the
// "deterministic in (seed, Config, Shards)" engine contract (DESIGN §2,
// §8): inside the deterministic core every random draw must flow through
// *rng.RNG (a seeded SplitMix64/xoshiro hierarchy), so importing
// math/rand, math/rand/v2, or crypto/rand there is an error with no
// suppression — as is consulting the wall clock via time.Now/Since/Until,
// which would thread scheduler state into simulation state. Outside the
// core (the cmd tools, the experiment drivers) wall-clock reads are
// legitimate metadata — timestamps in JSON records, progress lines — but
// must carry a //bitlint:wallclock justification so a reviewer can see
// the value never feeds a Result.
//
// The sharded engines add a third hazard: a goroutine whose closure
// consumes an *rng.RNG stream shared with any other goroutine is a data
// race on the stream's state, and even when "benign" it makes the draw
// order depend on the scheduler. So inside the deterministic packages a
// `go func(){…}` literal must not reference an *rng.RNG variable declared
// outside the literal — per-worker streams are derived up front with
// SplitN (or successive Splits) and handed to each goroutine as a
// parameter or worker-struct field.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid ambient randomness and wall-clock reads: math/rand, crypto/rand, and time.Now/Since/Until " +
		"are banned in the deterministic packages (randomness only via *rng.RNG); elsewhere wall-clock reads " +
		"need a //bitlint:wallclock justification; goroutine literals in deterministic packages must not " +
		"capture *rng.RNG streams from the enclosing scope (derive per-worker streams with SplitN)",
	Run: runDetRand,
}

// bannedRandImports are the ambient randomness sources that break seed
// reproducibility (or, for crypto/rand, cannot be seeded at all).
var bannedRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// wallClockFuncs are the time-package reads that leak scheduler state.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetRand(p *Pass) error {
	det := IsDeterministicPkg(p.Pkg.Path())
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if det && bannedRandImports[path] {
				p.Reportf(imp.Pos(),
					"import of %q in deterministic package %s: all randomness must flow through *rng.RNG",
					path, p.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.TypesInfo, node)
				if fn == nil || funcPkgPath(fn) != "time" || !wallClockFuncs[fn.Name()] {
					return true
				}
				if det {
					p.Reportf(node.Pos(),
						"time.%s in deterministic package %s: engines must be pure functions of (seed, Config, Shards)",
						fn.Name(), p.Pkg.Path())
				} else {
					p.ReportOrSuppress(node.Pos(), "wallclock",
						"time.%s outside the deterministic core: justify with //bitlint:wallclock <reason> that the value is metadata, not simulation state",
						fn.Name())
				}
			case *ast.GoStmt:
				if !det {
					return true
				}
				if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
					checkSharedStreamCapture(p, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkSharedStreamCapture flags every *rng.RNG-typed variable a goroutine
// literal references but does not itself declare: a stream shared across
// goroutines races on its internal state, so the draw order — and with it
// the Result — would depend on the scheduler instead of on (seed, Config,
// Shards). Streams declared inside the literal (parameters included, so
// the SplitN hand-off idiom passes) and worker structs owning their stream
// as a field are untouched.
func checkSharedStreamCapture(p *Pass, lit *ast.FuncLit) {
	reported := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.TypesInfo.Uses[id].(*types.Var)
		if !ok || reported[v] || !isRNGStream(v.Type()) {
			return true
		}
		// A struct field is reached through its owner (w.g): whether the
		// owner is shared is a different question from the one this check
		// answers, and the worker-struct idiom stores exactly one stream
		// per worker there on purpose.
		if v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		reported[v] = true
		p.Reportf(id.Pos(),
			"goroutine captures shared RNG stream %q from the enclosing scope: concurrent draws race on the stream state; derive one stream per worker with SplitN before spawning",
			id.Name)
		return true
	})
}

// isRNGStream reports whether t is rng.RNG or *rng.RNG from the repo's
// internal/rng package (suffix-matched, so fixture modules qualify too).
func isRNGStream(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && isPkgSuffix(obj.Pkg().Path(), "internal/rng")
}
