package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder guards the other half of the determinism contract: Go
// randomizes map iteration order per run, so a `range` over a map inside
// a deterministic package can reorder output rows, slice fills, or —
// worst — RNG consumption, silently breaking the byte-identical-replay
// guarantee that the seed-determinism regression test pins. Any map range
// in the deterministic core must either be rewritten over a sorted or
// indexed key set, or carry a //bitlint:maporder justification proving
// the body is order-insensitive (pure counting, set union, max/min over a
// commutative fold with no float accumulation).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid map iteration in the deterministic packages: randomized order breaks seed-reproducibility " +
		"when the body feeds output, slices, or RNG draws; annotate provably order-insensitive bodies " +
		"with //bitlint:maporder <reason>",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) error {
	if !IsDeterministicPkg(p.Pkg.Path()) {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			p.ReportOrSuppress(rs.Pos(), "maporder",
				"range over map (%s) in deterministic package %s: iteration order is randomized; "+
					"iterate sorted keys or justify with //bitlint:maporder <reason>",
				types.TypeString(tv.Type, nil), p.Pkg.Path())
			return true
		})
	}
	return nil
}
