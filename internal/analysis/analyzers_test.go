package analysis

import "testing"

// Each analyzer gets positive and negative coverage from fixtures under
// testdata/src; RunFixture checks reported diagnostics against the
// fixtures' // want comments, and lines carrying a //bitlint:
// justification with no want comment pin the suppression path.

func TestDetRandFixtures(t *testing.T) {
	RunFixture(t, DetRand, "detrand.example/internal/engine")
	RunFixture(t, DetRand, "detrand.example/internal/sim")
	RunFixture(t, DetRand, "detrand.example/internal/fabric")
	RunFixture(t, DetRand, "detrand.example/internal/vm")
	RunFixture(t, DetRand, "detrand.example/internal/evolve")
	RunFixture(t, DetRand, "detrand.example/cmd/tool")
}

func TestMapOrderFixtures(t *testing.T) {
	RunFixture(t, MapOrder, "maporder.example/internal/sim")
	RunFixture(t, MapOrder, "maporder.example/pkg/other")
}

func TestFloatCmpFixtures(t *testing.T) {
	RunFixture(t, FloatCmp, "floatcmp.example/util")
}

func TestProbRangeFixtures(t *testing.T) {
	RunFixture(t, ProbRange, "probrange.example/internal/engine")
}

func TestValidateFirstFixtures(t *testing.T) {
	RunFixture(t, ValidateFirst, "validatefirst.example/internal/engine")
	RunFixture(t, ValidateFirst, "validatefirst.example/pkg/other")
}

func TestTaintDetFixtures(t *testing.T) {
	RunFixture(t, TaintDet, "taintdet.example/internal/sim")
	RunFixture(t, TaintDet, "taintdet.example/internal/fabric")
	RunFixture(t, TaintDet, "taintdet.example/internal/serve")
	RunFixture(t, TaintDet, "taintdet.example/internal/engine")
	RunFixture(t, TaintDet, "taintdet.example/internal/vm")
}

func TestCtxLoopFixtures(t *testing.T) {
	RunFixture(t, CtxLoop, "ctxloop.example/internal/serve")
	RunFixture(t, CtxLoop, "ctxloop.example/pkg/other")
}

func TestErrSinkFixtures(t *testing.T) {
	RunFixture(t, ErrSink, "errsink.example/internal/sim")
	RunFixture(t, ErrSink, "errsink.example/pkg/other")
}

func TestAtomicMixFixtures(t *testing.T) {
	RunFixture(t, AtomicMix, "atomicmix.example/internal/engine")
}

func TestSuiteShape(t *testing.T) {
	as := All()
	if len(as) != 9 {
		t.Fatalf("All() returned %d analyzers, want 9", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{
		"detrand", "maporder", "floatcmp", "probrange", "validatefirst",
		"taintdet", "ctxloop", "errsink", "atomicmix",
	} {
		if !seen[want] {
			t.Errorf("suite is missing %q", want)
		}
	}
}

func TestIsDeterministicPkg(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"bitspread/internal/engine", true},
		{"bitspread/internal/rng", true},
		{"fix.example/internal/sim", true},
		{"internal/markov", true},
		{"bitspread/internal/fabric", true},
		{"bitspread/internal/experiments", false},
		{"bitspread/internal/serve", false},
		{"bitspread/cmd/bitsim", false},
		{"bitspread/internal/engineering", false},
	}
	for _, c := range cases {
		if got := IsDeterministicPkg(c.path); got != c.want {
			t.Errorf("IsDeterministicPkg(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestLoadRealPackage exercises the go list + export-data loader against
// the repo itself: the rng package must type-check and produce non-empty
// syntax and type information.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load(".", "bitspread/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "bitspread/internal/rng" || len(p.Files) == 0 || p.Types == nil {
		t.Fatalf("package loaded incompletely: %+v", p.PkgPath)
	}
	if p.Types.Scope().Lookup("RNG") == nil {
		t.Error("type RNG not found in loaded package scope")
	}
}
