package analysis

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces the cancellation-propagation contract on the
// concurrent service layers (internal/{serve,fabric,sim,cli}): the crash
// and drain proofs (DESIGN §13, §14) assume no goroutine outlives its
// context, so
//
//  1. every unbounded `for` loop (no condition, no range clause) in these
//     packages must observe cancellation in its body — a receive from
//     ctx.Done(), a ctx.Err() check, or a receive from a quit channel
//     (chan struct{}); an unbounded loop that observes none of these is a
//     goroutine leak the -race suites can only catch by timing out;
//  2. a function that receives a context.Context must not sever the chain
//     by passing context.Background() or context.TODO() to a callee —
//     that orphans the callee's work from the caller's drain/timeout.
//
// The loop check is syntactic over the loop body including nested
// function literals it launches; the severed-chain check uses the type
// information to recognize context.Context parameters.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "unbounded for-loops in internal/{serve,fabric,sim,cli} must observe ctx.Done()/ctx.Err() or a quit " +
		"channel; functions receiving a context.Context must not pass context.Background()/TODO() to callees; " +
		"justify exceptions with //bitlint:ctxloop <reason>",
	Run: runCtxLoop,
}

// ctxLoopPkgs are the concurrent layers under the contract. The
// deterministic engines spin bounded round loops (MaxRounds) and are
// exempt; cmd binaries own the root contexts.
var ctxLoopPkgs = []string{
	"internal/serve",
	"internal/fabric",
	"internal/sim",
	"internal/cli",
}

func inCtxLoopScope(path string) bool {
	for _, s := range ctxLoopPkgs {
		if isPkgSuffix(path, s) {
			return true
		}
	}
	return false
}

func runCtxLoop(p *Pass) error {
	if !inCtxLoopScope(p.Pkg.Path()) {
		return nil
	}
	eachFunc(p, func(fd *ast.FuncDecl) {
		hasCtx := funcHasCtxParam(p, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ForStmt:
				if node.Cond == nil && node.Init == nil && node.Post == nil {
					if !observesCancellation(p, node.Body) {
						p.ReportOrSuppress(node.Pos(), "ctxloop",
							"unbounded for-loop in %s observes no cancellation: add a ctx.Done()/quit-channel "+
								"case or justify with //bitlint:ctxloop <reason>",
							fd.Name.Name)
					}
				}
			case *ast.CallExpr:
				if !hasCtx {
					return true
				}
				if fn := calleeFunc(p.TypesInfo, node); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
					// A bare ctx-default (`if ctx == nil { ctx = ... }`) is
					// assignment, not an argument, and is not flagged here:
					// only Background/TODO handed directly to a callee severs
					// an existing chain.
					if isCallArgument(fd, node) {
						p.ReportOrSuppress(node.Pos(), "ctxloop",
							"%s receives a context.Context but passes context.%s to a callee, severing "+
								"cancellation; propagate the caller's ctx or justify with //bitlint:ctxloop <reason>",
							fd.Name.Name, fn.Name())
					}
				}
			}
			return true
		})
	})
	return nil
}

// funcHasCtxParam reports whether fd declares a context.Context
// parameter.
func funcHasCtxParam(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := p.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isCallArgument reports whether call appears as an argument of another
// call within fd (as opposed to the RHS of an assignment, the blessed
// nil-default idiom).
func isCallArgument(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	arg := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if arg {
			return false
		}
		outer, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, a := range outer.Args {
			if containsNode(a, call) {
				arg = true
				return false
			}
		}
		return true
	})
	return arg
}

// containsNode reports whether target appears within root.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// observesCancellation reports whether the loop body contains a
// cancellation observation: <-ctx.Done(), ctx.Err(), or a receive from a
// chan struct{} quit channel (select cases included).
func observesCancellation(p *Pass, body *ast.BlockStmt) bool {
	seen := false
	ast.Inspect(body, func(n ast.Node) bool {
		if seen {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Done" || sel.Sel.Name == "Err") && exprIsContext(p, sel.X) {
					seen = true
					return false
				}
			}
		case *ast.UnaryExpr:
			// <-quit on a struct{} channel.
			if node.Op.String() == "<-" {
				if tv, ok := p.TypesInfo.Types[node.X]; ok {
					if ch, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						if st, isStruct := ch.Elem().Underlying().(*types.Struct); isStruct && st.NumFields() == 0 {
							seen = true
							return false
						}
					}
				}
			}
		}
		return true
	})
	return seen
}

// exprIsContext reports whether the expression's static type is
// context.Context.
func exprIsContext(p *Pass, x ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[x]
	return ok && tv.Type != nil && isContextType(tv.Type)
}
