package analysis

import (
	"go/ast"
	"go/types"
)

// ErrSink guards the write-ordering proofs of the crash-safety core
// (internal/{sim,serve,fabric}): the intent-log-before-202 and
// fsync-before-ack orderings (DESIGN §13) are only proofs if every
// Write/Flush/Sync/Close/Rename on the durable path reports its failure.
// A discarded error from one of these calls silently converts "fsynced
// before acknowledged" into "probably fsynced", and every byte-identity
// claim downstream inherits the "probably".
//
// Flagged: a statement-position call, or an explicit `_ =` discard, of a
// method named Write/WriteString/Flush/Sync/Close returning an error on a
// durable-path receiver (*os.File, *bufio.Writer, or a type declared in
// the crash-safety packages themselves, like sim.Journal and
// serve.jobLog), and of os.Rename/os.Remove. Deferred calls are exempt:
// `defer f.Close()` is the error-path cleanup idiom, and the happy path
// is required to close explicitly — which this analyzer then checks.
// Suppression: //bitlint:errsink <reason> (e.g. "open failed; the open
// error is the one the caller needs").
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc: "in internal/{sim,serve,fabric}, errors from Write/Flush/Sync/Close on durable-path receivers and from " +
		"os.Rename/os.Remove must be checked (deferred cleanup calls exempt); discards void the crash-ordering " +
		"proofs and need a //bitlint:errsink <reason>",
	Run: runErrSink,
}

// errSinkPkgs is the crash-safety core: the packages whose fsync/rename
// ordering the SIGKILL-restart proofs replay.
var errSinkPkgs = []string{
	"internal/sim",
	"internal/serve",
	"internal/fabric",
}

// errSinkMethods are the durable-path operations whose error results
// carry the crash-ordering signal.
var errSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Flush":       true,
	"Sync":        true,
	"Close":       true,
}

func inErrSinkScope(path string) bool {
	for _, s := range errSinkPkgs {
		if isPkgSuffix(path, s) {
			return true
		}
	}
	return false
}

func runErrSink(p *Pass) error {
	if !inErrSinkScope(p.Pkg.Path()) {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.DeferStmt:
				// Deferred cleanup is the error-path idiom; skip the whole
				// call, arguments included.
				return false
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDiscard(p, call)
				}
			case *ast.AssignStmt:
				// `_ = f.Sync()` and `_, _ = w.Write(b)`: an explicit
				// discard is still a discard.
				if len(st.Rhs) == 1 && allBlank(st.Lhs) {
					if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
						checkDiscard(p, call)
					}
				}
			}
			return true
		})
	}
	return nil
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// checkDiscard reports the call if it is a durable-path operation whose
// error result is being discarded.
func checkDiscard(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil || !returnsError(fn) {
		return
	}
	pkg := funcPkgPath(fn)
	if pkg == "os" && (fn.Name() == "Rename" || fn.Name() == "Remove") {
		p.ReportOrSuppress(call.Pos(), "errsink",
			"discarded error from os.%s: a failed rename/remove breaks the atomic-publish ordering; "+
				"check it or justify with //bitlint:errsink <reason>", fn.Name())
		return
	}
	if !errSinkMethods[fn.Name()] || !durableReceiver(fn) {
		return
	}
	p.ReportOrSuppress(call.Pos(), "errsink",
		"discarded error from (%s).%s: the crash-ordering proofs need every durable-path failure surfaced; "+
			"check it or justify with //bitlint:errsink <reason>", recvTypeString(fn), fn.Name())
}

// returnsError reports whether the function's last result is an error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// durableReceiver reports whether the method's receiver is on the durable
// path: *os.File, *bufio.Writer, or any named type declared inside the
// crash-safety packages (sim.Journal, serve.jobLog, …). Transport-layer
// writers (http.ResponseWriter, JSON encoders) are out of scope — their
// failures are the peer's problem, not the disk's.
func durableReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		// Interface receivers (io.Closer etc.) are resolved to the
		// interface's declaring package; keep os/bufio only.
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "os", "bufio":
		return true
	}
	return inErrSinkScope(obj.Pkg().Path())
}

// recvTypeString renders the receiver type for diagnostics.
func recvTypeString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	return sig.Recv().Type().String()
}
