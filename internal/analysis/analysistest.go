package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture type-checks the fixture package under testdata/src/<rel>,
// runs one analyzer over it, and compares the unsuppressed diagnostics
// against the fixture's `// want "regexp"` comments — the x/tools
// analysistest convention, reimplemented on the stdlib loader. <rel> is
// also the fixture's import path, so path-scoped analyzers (detrand,
// maporder, validatefirst) see fixtures under e.g.
// fix.example/internal/engine exactly as they see the real tree.
//
// Suppressed diagnostics (those covered by a //bitlint: justification)
// are treated as silent: the suite asserts suppression works by fixtures
// that carry a directive and no want comment on the same line.
func RunFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", rel, err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		t.Fatalf("fixture %s: no .go files", rel)
	}

	pkg, err := loadFixture(rel, filenames)
	if err != nil {
		t.Fatalf("fixture %s: %v", rel, err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", rel, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		key := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w == nil {
				continue
			}
			if w.re.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type wantExpectation struct{ re *regexp.Regexp }

// wantRe extracts the quoted regexps of a `// want "a" "b"` comment.
var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// collectWants indexes every want comment in the fixture by file and line.
func collectWants(t *testing.T, pkg *Package) map[posKey][]*wantExpectation {
	t.Helper()
	wants := make(map[posKey][]*wantExpectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				key := posKey{filepath.Base(posn.Filename), posn.Line}
				for _, pat := range splitQuoted(t, posn, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					wants[key] = append(wants[key], &wantExpectation{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of double-quoted or backquoted strings.
func splitQuoted(t *testing.T, posn token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			t.Fatalf("%s: malformed want clause %q", posn, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", posn, s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", posn, raw, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// loadFixture type-checks one fixture package: its dependency closure is
// resolved from the fixture files' own import lines via go list, so
// fixtures may import both the standard library and the repo's real
// packages (probrange fixtures call the real rng/protocol APIs).
func loadFixture(pkgPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	imports, err := fixtureImports(fset, filenames)
	if err != nil {
		return nil, err
	}
	var s *ExportSet
	if len(imports) > 0 {
		if s, err = NewExportSet(fset, ".", imports...); err != nil {
			return nil, err
		}
	} else {
		s = newExportSet(fset, nil)
	}
	return s.TypeCheck(pkgPath, filenames)
}

// fixtureImports collects the union of import paths across the files.
func fixtureImports(fset *token.FileSet, filenames []string) ([]string, error) {
	seen := make(map[string]bool)
	for _, name := range filenames {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", name, err)
			}
			seen[path] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}
