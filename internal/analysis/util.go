package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method object a call expression
// invokes, or nil when the callee is not a named function (conversions,
// function-typed variables, built-ins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// funcPkgPath returns the import path of the package declaring f ("" for
// builtins and method sets without a package).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isPkgSuffix reports whether path is exactly suffix or ends in
// "/"+suffix, the same matching rule IsDeterministicPkg uses, so fixture
// packages under synthetic module prefixes behave like the real tree.
func isPkgSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// eachFunc walks every function and method declaration in the pass.
func eachFunc(p *Pass, visit func(*ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
