package dist

import (
	"math"
	"testing"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// χ²(2) is Exponential(1/2): CDF(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-12 {
			t.Errorf("ChiSquareCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
	// Classical critical values: P(χ²(1) ≤ 3.841459) = 0.95,
	// P(χ²(10) ≤ 18.307038) = 0.95.
	if got := ChiSquareCDF(3.841458820694124, 1); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("χ²(1) 95%% point: %v", got)
	}
	if got := ChiSquareCDF(18.307038053275146, 10); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("χ²(10) 95%% point: %v", got)
	}
	// Median of χ²(k) approaches k; check order relations.
	if ChiSquareCDF(10, 10) > 0.6 || ChiSquareCDF(10, 10) < 0.4 {
		t.Errorf("χ²(10) CDF at 10 = %v, want near 0.5", ChiSquareCDF(10, 10))
	}
}

func TestChiSquareCDFEdges(t *testing.T) {
	if got := ChiSquareCDF(0, 3); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := ChiSquareCDF(-1, 3); got != 0 {
		t.Errorf("CDF(-1) = %v", got)
	}
	if got := ChiSquareTail(1e6, 3); got > 1e-12 {
		t.Errorf("deep tail = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	ChiSquareCDF(1, 0)
}

func TestChiSquareCDFMonotone(t *testing.T) {
	for _, k := range []int{1, 2, 5, 20, 100} {
		prev := -1.0
		for x := 0.0; x <= 3*float64(k); x += float64(k) / 10 {
			v := ChiSquareCDF(x, k)
			if v < prev-1e-12 || v < 0 || v > 1 {
				t.Fatalf("k=%d: CDF not monotone/valid at x=%v: %v", k, x, v)
			}
			prev = v
		}
	}
}

func TestChiSquareStat(t *testing.T) {
	// Perfect fit: statistic 0.
	stat, dof, err := ChiSquareStat([]int64{10, 20, 30}, []float64{10, 20, 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 2 {
		t.Errorf("perfect fit: stat=%v dof=%d", stat, dof)
	}
	// Known value: obs (12, 8) vs exp (10, 10): 0.4 + 0.4 = 0.8.
	stat, dof, err = ChiSquareStat([]int64{12, 8}, []float64{10, 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stat-0.8) > 1e-12 || dof != 1 {
		t.Errorf("stat=%v dof=%d, want 0.8, 1", stat, dof)
	}
	// Pooling: tiny expected cells merge.
	stat, dof, err = ChiSquareStat([]int64{50, 50, 1, 2}, []float64{50, 50, 0.5, 2.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dof != 2 {
		t.Errorf("pooled dof = %d, want 2", dof)
	}
	if stat != 0 {
		t.Errorf("pooled stat = %v, want 0 (3 = 3)", stat)
	}
	// Errors.
	if _, _, err := ChiSquareStat([]int64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquareStat([]int64{1}, []float64{1}, 5); err == nil {
		t.Error("single pooled cell accepted")
	}
}

// TestChiSquareSelfConsistency: the statistic of multinomial counts drawn
// from the expected distribution should be unexceptional (p-value not
// tiny) — an end-to-end check of stat + CDF together using a fixed,
// pre-drawn sample.
func TestChiSquareSelfConsistency(t *testing.T) {
	// A hand-fixed sample of 600 draws over 6 fair die faces.
	obs := []int64{96, 104, 99, 108, 93, 100}
	exp := make([]float64, 6)
	for i := range exp {
		exp[i] = 100
	}
	stat, dof, err := ChiSquareStat(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := ChiSquareTail(stat, dof)
	if p < 0.1 {
		t.Errorf("fair-die sample rejected: stat=%v dof=%d p=%v", stat, dof, p)
	}
}
