package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLogChoose(t *testing.T) {
	tests := []struct {
		n, k int64
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{10, 5, math.Log(252)},
		{52, 5, math.Log(2598960)},
	}
	for _, tt := range tests {
		if got := LogChoose(tt.n, tt.k); !almost(got, tt.want, 1e-9) {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose outside [0,n] should be -Inf")
	}
}

func TestChoosePascal(t *testing.T) {
	// Property: C(n,k) = C(n-1,k-1) + C(n-1,k) for moderate n.
	for n := int64(2); n <= 30; n++ {
		for k := int64(1); k < n; k++ {
			got := Choose(n, k)
			want := Choose(n-1, k-1) + Choose(n-1, k)
			if !almost(got, want, 1e-6*want) {
				t.Fatalf("Pascal identity fails at C(%d,%d): %v vs %v", n, k, got, want)
			}
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, c := range []struct {
		n int64
		p float64
	}{{10, 0.5}, {50, 0.1}, {100, 0.99}, {1000, 0.3}} {
		sum := 0.0
		for k := int64(0); k <= c.n; k++ {
			sum += BinomialPMF(c.n, k, c.p)
		}
		if !almost(sum, 1, 1e-9) {
			t.Errorf("pmf(n=%d,p=%v) sums to %v", c.n, c.p, sum)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if got := BinomialPMF(10, 0, 0); got != 1 {
		t.Errorf("PMF(10,0,p=0) = %v, want 1", got)
	}
	if got := BinomialPMF(10, 10, 1); got != 1 {
		t.Errorf("PMF(10,10,p=1) = %v, want 1", got)
	}
	if got := BinomialPMF(10, 3, 0); got != 0 {
		t.Errorf("PMF(10,3,p=0) = %v, want 0", got)
	}
	if got := BinomialPMF(10, -1, 0.5); got != 0 {
		t.Errorf("PMF out of range = %v, want 0", got)
	}
}

func TestBinomialPMFKnownValues(t *testing.T) {
	// P(X=2) for Binomial(4, 0.5) = 6/16.
	if got := BinomialPMF(4, 2, 0.5); !almost(got, 0.375, 1e-12) {
		t.Errorf("PMF(4,2,0.5) = %v, want 0.375", got)
	}
	// Deep tail: P(X=0) for Binomial(1000, 0.5) = 2^-1000.
	got := BinomialPMF(1000, 0, 0.5)
	want := math.Exp(-1000 * math.Ln2)
	if got == 0 || math.Abs(math.Log(got)-math.Log(want)) > 1e-9 {
		t.Errorf("deep tail PMF = %v, want %v", got, want)
	}
}

func TestBinomialCDF(t *testing.T) {
	tests := []struct {
		n, k int64
		p    float64
		want float64
	}{
		{10, -1, 0.5, 0},
		{10, 10, 0.5, 1},
		{4, 2, 0.5, (1 + 4 + 6) / 16.0},
		{10, 5, 0, 1},
		{10, 5, 1, 0},
	}
	for _, tt := range tests {
		if got := BinomialCDF(tt.n, tt.k, tt.p); !almost(got, tt.want, 1e-12) {
			t.Errorf("CDF(%d,%d,%v) = %v, want %v", tt.n, tt.k, tt.p, got, tt.want)
		}
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := float64(pRaw) / 256
		prev := -1.0
		for k := int64(0); k <= 30; k++ {
			c := BinomialCDF(30, k, p)
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return almost(prev, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFValues(t *testing.T) {
	tests := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.x); !almost(got, tt.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almost(got, p, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestHoeffdingTail(t *testing.T) {
	// delta = sqrt(n) gives exp(-2).
	if got := HoeffdingTail(100, 10); !almost(got, math.Exp(-2), 1e-12) {
		t.Errorf("HoeffdingTail(100,10) = %v", got)
	}
	if got := HoeffdingTail(0, 5); got != 1 {
		t.Errorf("HoeffdingTail with n=0 = %v, want 1", got)
	}
	// The bound is a valid probability bound: verify it dominates the exact
	// binomial tail on a grid.
	const n = 200
	for _, delta := range []float64{5, 10, 20, 40} {
		exact := 1 - BinomialCDF(n, int64(n/2+delta)-1, 0.5) // P(X >= n/2 + delta)
		bound := HoeffdingTail(n, delta)
		if exact > bound+1e-12 {
			t.Errorf("Hoeffding bound violated at delta=%v: exact %v > bound %v", delta, exact, bound)
		}
	}
}

func TestAzumaTail(t *testing.T) {
	got := AzumaTail(100, 1, 20, 0.01)
	want := 2*math.Exp(-400.0/200.0) + 0.01
	if !almost(got, want, 1e-12) {
		t.Errorf("AzumaTail = %v, want %v", got, want)
	}
	if got := AzumaTail(0, 1, 5, 0.25); got != 0.25 {
		t.Errorf("AzumaTail with 0 steps = %v, want p", got)
	}
}

func TestProp4Y(t *testing.T) {
	// y(c,ℓ) = 1 - (1-c)^{ℓ+1}/2 must lie in (c, 1) for c in (0,1).
	for _, c := range []float64{0.1, 0.3, 0.5, 0.9} {
		for _, l := range []int{1, 2, 3, 5, 10} {
			y := Prop4Y(c, l)
			if y <= c || y >= 1 {
				t.Errorf("Prop4Y(%v,%d) = %v not in (c,1)", c, l, y)
			}
		}
	}
	if got, want := Prop4Y(0.5, 1), 1-0.25/2; !almost(got, want, 1e-12) {
		t.Errorf("Prop4Y(0.5,1) = %v, want %v", got, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Prop4Y(-1, 2) did not panic")
			}
		}()
		Prop4Y(-1, 2)
	}()
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 0.05)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("Wilson(50/100) = [%v,%v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("Wilson(50/100) width %v too wide", hi-lo)
	}
	lo, hi = WilsonInterval(0, 100, 0.05)
	if lo != 0 {
		t.Errorf("Wilson(0/100) lo = %v, want 0", lo)
	}
	if hi <= 0 || hi > 0.1 {
		t.Errorf("Wilson(0/100) hi = %v", hi)
	}
	lo, hi = WilsonInterval(0, 0, 0.05)
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson with no trials = [%v,%v], want [0,1]", lo, hi)
	}
}

func TestWilsonIntervalQuick(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int64(n%1000) + 1
		successes := int64(s) % (trials + 1)
		lo, hi := WilsonInterval(successes, trials, 0.05)
		phat := float64(successes) / float64(trials)
		return lo >= 0 && hi <= 1 && lo <= phat+1e-12 && hi >= phat-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
