package dist

import (
	"fmt"
	"math"
)

// ChiSquareCDF returns P(X ≤ x) for X ~ χ²(k): the regularized lower
// incomplete gamma function P(k/2, x/2). It panics for k < 1.
func ChiSquareCDF(x float64, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("dist: chi-square with %d degrees of freedom", k))
	}
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareTail returns P(X > x) for X ~ χ²(k) — the p-value of a
// goodness-of-fit statistic.
func ChiSquareTail(x float64, k int) float64 {
	return 1 - ChiSquareCDF(x, k)
}

// regularizedGammaP computes P(a, x) = γ(a, x)/Γ(a) by the series
// expansion for x < a+1 and the continued fraction for x ≥ a+1
// (Numerical Recipes style), accurate to ~1e-12 over the ranges the
// tests use.
func regularizedGammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	//bitlint:floatexact P(a,0)=0 exactly; the series below handles every positive x, however small
	case x == 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinued(a, x)
	}
}

// gammaPSeries evaluates P(a, x) by its power series.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinued evaluates Q(a, x) = 1 - P(a, x) by the Lentz continued
// fraction.
func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareStat computes the Pearson goodness-of-fit statistic and its
// degrees of freedom for observed counts against expected counts, pooling
// cells with expected count below minExpected (default 5 when <= 0) into
// a single tail cell. It returns an error when fewer than two effective
// cells remain.
func ChiSquareStat(observed []int64, expected []float64, minExpected float64) (stat float64, dof int, err error) {
	if len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("dist: observed/expected lengths %d vs %d", len(observed), len(expected))
	}
	if minExpected <= 0 {
		minExpected = 5
	}
	var pooledObs, pooledExp float64
	cells := 0
	for i := range observed {
		if expected[i] < minExpected {
			pooledObs += float64(observed[i])
			pooledExp += expected[i]
			continue
		}
		d := float64(observed[i]) - expected[i]
		stat += d * d / expected[i]
		cells++
	}
	if pooledExp > 0 {
		d := pooledObs - pooledExp
		stat += d * d / pooledExp
		cells++
	}
	if cells < 2 {
		return 0, 0, fmt.Errorf("dist: only %d effective cells after pooling", cells)
	}
	return stat, cells - 1, nil
}
