// Package dist provides the probability distributions and concentration
// bounds used throughout the reproduction: numerically stable binomial
// pmf/cdf, the standard normal, the Hoeffding and Azuma–Hoeffding bounds of
// the paper's Appendix A (Theorems 15 and 16), and Wilson score confidence
// intervals for the Monte-Carlo harness.
package dist

import "math"

// LogChoose returns log(n choose k) computed through log-gamma, stable for
// large n. It returns -Inf when k is outside [0, n].
func LogChoose(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln1 - lk - lnk
}

// Choose returns (n choose k) as a float64. It overflows to +Inf for very
// large arguments; callers needing exactness should work in log space.
func Choose(n, k int64) float64 {
	return math.Exp(LogChoose(n, k))
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p), computed in log
// space so it is accurate in the far tails.
func BinomialPMF(n, k int64, p float64) float64 {
	switch {
	case k < 0 || k > n:
		return 0
	case p <= 0:
		if k == 0 {
			return 1
		}
		return 0
	case p >= 1:
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, p). It sums the pmf from
// the lighter tail for stability; cost is O(min(k, n-k)).
func BinomialCDF(n, k int64, p float64) float64 {
	switch {
	case k < 0:
		return 0
	case k >= n:
		return 1
	case p <= 0:
		return 1
	case p >= 1:
		return 0
	}
	if k < n-k {
		sum := 0.0
		for i := int64(0); i <= k; i++ {
			sum += BinomialPMF(n, i, p)
		}
		return math.Min(sum, 1)
	}
	sum := 0.0
	for i := k + 1; i <= n; i++ {
		sum += BinomialPMF(n, i, p)
	}
	return math.Max(1-sum, 0)
}

// NormalCDF returns the standard normal cumulative distribution Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), using the
// Beasley–Springer–Moro rational approximation refined with one Newton step.
// It panics outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("dist: NormalQuantile domain is (0,1)")
	}
	// Acklam/BSM-style rational approximation.
	var x float64
	switch {
	case p < 0.02425:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-0.007784894002430293*q-0.3223964580411365)*q-2.400758277161838)*q-2.549732539343734)*q+4.374664141464968)*q + 2.938163982698783) /
			((((0.007784695709041462*q+0.3224671290700398)*q+2.445134137142996)*q+3.754408661907416)*q + 1)
	case p > 1-0.02425:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-0.007784894002430293*q-0.3223964580411365)*q-2.400758277161838)*q-2.549732539343734)*q+4.374664141464968)*q + 2.938163982698783) /
			((((0.007784695709041462*q+0.3224671290700398)*q+2.445134137142996)*q+3.754408661907416)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((-39.69683028665376*r+220.9460984245205)*r-275.9285104469687)*r+138.357751867269)*r-30.66479806614716)*r + 2.506628277459239) * q /
			(((((-54.47609879822406*r+161.5858368580409)*r-155.6989798598866)*r+66.80131188771972)*r-13.28068155288572)*r + 1)
	}
	// One Newton refinement: x -= (Φ(x)-p)/φ(x).
	pdf := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
	if pdf > 0 {
		x -= (NormalCDF(x) - p) / pdf
	}
	return x
}

// HoeffdingTail is the bound of Theorem 15: for X the sum of n i.i.d.
// {0,1} variables, P(X >= EX + delta) and P(X <= EX - delta) are each at
// most exp(-2 delta² / n).
func HoeffdingTail(n int64, delta float64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Exp(-2 * delta * delta / float64(n))
}

// AzumaTail is the bound of Theorem 16 (Chung–Lu form): for a martingale
// with increments exceeding c only with probability at most p over T steps,
// P(|X_T - X_0| > delta) <= 2 exp(-delta² / (2 T c²)) + p.
func AzumaTail(steps int64, c, delta, p float64) float64 {
	if steps <= 0 || c <= 0 {
		return p
	}
	return 2*math.Exp(-delta*delta/(2*float64(steps)*c*c)) + p
}

// Prop4Y returns the constant y(c, ℓ) = 1 - (1-c)^{ℓ+1}/2 from the proof of
// Proposition 4: starting from X_t <= c·n, the next round satisfies
// X_{t+1} <= y·n except with probability exp(-2√n).
func Prop4Y(c float64, sampleSize int) float64 {
	if c < 0 || c > 1 {
		panic("dist: Prop4Y requires c in [0,1]")
	}
	a := math.Pow(1-c, float64(sampleSize)+1)
	return 1 - a/2
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion with the given number of successes out of trials,
// at confidence level 1-alpha. It returns (0, 1) when trials == 0.
func WilsonInterval(successes, trials int64, alpha float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	z := NormalQuantile(1 - alpha/2)
	n := float64(trials)
	phat := float64(successes) / n
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}
