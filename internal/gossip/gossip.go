// Package gossip implements classical active-communication rumor
// spreading (push, pull, push&pull), the baseline the bit-dissemination
// model deliberately forbids: the paper's agents only observe sampled
// opinions passively and cannot tell who is informed. With active
// communication a single informed source reaches everyone in Θ(log n)
// rounds (Karp et al. / Pittel shape); the passive, memory-less,
// constant-ℓ setting needs almost-linear time (Theorem 1). Experiment X8
// measures that price of passivity.
package gossip

import (
	"errors"
	"fmt"

	"bitspread/internal/rng"
)

// Mode selects the exchange direction of a round.
type Mode int

const (
	// Push: every informed agent calls a uniform agent and informs it.
	Push Mode = iota + 1
	// Pull: every uninformed agent calls a uniform agent and becomes
	// informed if the callee is.
	Pull
	// PushPull: both exchanges happen each round.
	PushPull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrConfig is returned for invalid spreading configurations.
var ErrConfig = errors.New("gossip: invalid configuration")

// Config describes a rumor-spreading run.
type Config struct {
	// N is the population size.
	N int64
	// Informed0 is the number of initially informed agents (>= 1).
	Informed0 int64
	// Mode selects push, pull, or push&pull.
	Mode Mode
	// MaxRounds caps the run (0: 64·log₂n + 64, far above the Θ(log n)
	// completion time).
	MaxRounds int64
	// Record, if non-nil, receives (round, informed) after every round.
	Record func(round, informed int64)
}

// Result reports a spreading run.
type Result struct {
	// Completed is true when every agent was informed.
	Completed bool
	// Rounds is the completion round (or rounds executed).
	Rounds int64
	// Informed is the final informed count.
	Informed int64
}

// Spread simulates rumor spreading. Push targets are resolved agent-level
// (collisions matter: several pushes can hit the same agent), pull counts
// are exact binomials; cost is O(I_t) for push and O(1) for pull per
// round, so full runs cost O(n) overall.
func Spread(cfg Config, g *rng.RNG) (Result, error) {
	switch {
	case cfg.N < 1:
		return Result{}, fmt.Errorf("%w: N=%d", ErrConfig, cfg.N)
	case cfg.Informed0 < 1 || cfg.Informed0 > cfg.N:
		return Result{}, fmt.Errorf("%w: Informed0=%d with N=%d", ErrConfig, cfg.Informed0, cfg.N)
	case cfg.Mode != Push && cfg.Mode != Pull && cfg.Mode != PushPull:
		return Result{}, fmt.Errorf("%w: mode %d", ErrConfig, int(cfg.Mode))
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64*log2Ceil(cfg.N) + 64
	}

	// informed[i] for i < n; we track the informed set implicitly by
	// permuting identities: agents 0..informed-1 are informed. Uniform
	// calling only depends on counts, so the relabeling is exact.
	informed := cfg.Informed0
	res := Result{Informed: informed}
	if informed == cfg.N {
		res.Completed = true
		return res, nil
	}
	for t := int64(1); t <= maxRounds; t++ {
		newInformed := informed
		if cfg.Mode == Push || cfg.Mode == PushPull {
			// Each informed agent pushes to a uniform agent; the number of
			// *distinct susceptible* targets follows the occupancy
			// distribution, which we realize exactly by sampling targets.
			hits := make(map[int64]bool, informed)
			for i := int64(0); i < informed; i++ {
				target := int64(g.Intn(int(cfg.N)))
				if target >= informed { // susceptible
					hits[target] = true
				}
			}
			newInformed += int64(len(hits))
		}
		if cfg.Mode == Pull || cfg.Mode == PushPull {
			// Each still-susceptible agent pulls from a uniform agent and
			// is informed iff it hits the informed set of *this round's
			// start*; exact count is binomial.
			susceptible := cfg.N - newInformed
			p := float64(informed) / float64(cfg.N)
			newInformed += g.Binomial(susceptible, p)
		}
		informed = newInformed
		res.Rounds = t
		res.Informed = informed
		if cfg.Record != nil {
			cfg.Record(t, informed)
		}
		if informed == cfg.N {
			res.Completed = true
			return res, nil
		}
	}
	return res, nil
}

// log2Ceil returns ⌈log₂ n⌉ for n ≥ 1.
func log2Ceil(n int64) int64 {
	var b int64
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
