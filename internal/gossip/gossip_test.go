package gossip

import (
	"errors"
	"math"
	"testing"

	"bitspread/internal/rng"
)

func TestSpreadValidation(t *testing.T) {
	cases := []Config{
		{N: 0, Informed0: 1, Mode: Push},
		{N: 10, Informed0: 0, Mode: Push},
		{N: 10, Informed0: 11, Mode: Pull},
		{N: 10, Informed0: 1, Mode: Mode(9)},
	}
	for i, cfg := range cases {
		if _, err := Spread(cfg, rng.New(1)); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSpreadCompletesAllModes(t *testing.T) {
	for _, mode := range []Mode{Push, Pull, PushPull} {
		res, err := Spread(Config{N: 4096, Informed0: 1, Mode: mode}, rng.New(uint64(mode)))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Completed {
			t.Errorf("%v did not complete: %+v", mode, res)
		}
		if res.Informed != 4096 {
			t.Errorf("%v informed = %d", mode, res.Informed)
		}
	}
}

func TestSpreadLogarithmic(t *testing.T) {
	// Push&pull completes in Θ(log n) rounds: check the ratio to log₂ n is
	// bounded (the classical constant is ~log₂n + ln n + O(1) for push).
	for _, n := range []int64{1 << 10, 1 << 14, 1 << 18} {
		master := rng.New(uint64(n))
		worst := int64(0)
		for rep := 0; rep < 10; rep++ {
			res, err := Spread(Config{N: n, Informed0: 1, Mode: PushPull}, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("n=%d did not complete", n)
			}
			if res.Rounds > worst {
				worst = res.Rounds
			}
		}
		logn := math.Log2(float64(n))
		if float64(worst) > 4*logn {
			t.Errorf("n=%d: worst completion %d rounds > 4·log₂n = %v", n, worst, 4*logn)
		}
	}
}

func TestSpreadMonotone(t *testing.T) {
	// The informed count never decreases and never exceeds n.
	prev := int64(1)
	ok := true
	_, err := Spread(Config{
		N: 2048, Informed0: 1, Mode: PushPull,
		Record: func(_, informed int64) {
			if informed < prev || informed > 2048 {
				ok = false
			}
			prev = informed
		},
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("informed count not monotone or out of range")
	}
}

func TestSpreadAlreadyComplete(t *testing.T) {
	res, err := Spread(Config{N: 10, Informed0: 10, Mode: Push}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 0 {
		t.Errorf("pre-complete run: %+v", res)
	}
}

func TestSpreadHonoursCap(t *testing.T) {
	res, err := Spread(Config{N: 1 << 20, Informed0: 1, Mode: Pull, MaxRounds: 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Rounds != 2 {
		t.Errorf("capped run: %+v", res)
	}
}

func TestPullGrowthShape(t *testing.T) {
	// From half informed, one pull round informs ~half the susceptible:
	// E[I'] = I + S·(I/n) = n·3/4.
	const n = 1 << 16
	sum := 0.0
	master := rng.New(8)
	const reps = 200
	for i := 0; i < reps; i++ {
		res, err := Spread(Config{N: n, Informed0: n / 2, Mode: Pull, MaxRounds: 1}, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.Informed)
	}
	mean := sum / reps
	want := 0.75 * n
	if math.Abs(mean-want) > 0.01*n {
		t.Errorf("one pull round from n/2: mean %v, want %v", mean, want)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{Push, Pull, PushPull, Mode(42)} {
		if m.String() == "" {
			t.Errorf("empty string for %d", int(m))
		}
	}
}
