package protocol

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"bitspread/internal/rng"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		ell     int
		g0, g1  []float64
		wantErr error
	}{
		{"ok", 1, []float64{0, 1}, []float64{0, 1}, nil},
		{"zero sample size", 0, []float64{0}, []float64{0}, ErrSampleSize},
		{"negative sample size", -3, nil, nil, ErrSampleSize},
		{"short g0", 2, []float64{0, 1}, []float64{0, 0.5, 1}, ErrTableLength},
		{"long g1", 1, []float64{0, 1}, []float64{0, 0.5, 1}, ErrTableLength},
		{"prob > 1", 1, []float64{0, 1.5}, []float64{0, 1}, ErrProbRange},
		{"prob < 0", 1, []float64{-0.1, 1}, []float64{0, 1}, ErrProbRange},
		{"NaN prob", 1, []float64{math.NaN(), 1}, []float64{0, 1}, ErrProbRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New("test", tt.ell, tt.g0, tt.g1)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("New error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewCopiesTables(t *testing.T) {
	g := []float64{0, 0.5, 1}
	r, err := NewSymmetric("t", 2, g)
	if err != nil {
		t.Fatal(err)
	}
	g[1] = 0.9 // mutate caller's slice
	if r.G(0, 1) != 0.5 {
		t.Error("Rule aliases the caller's table")
	}
}

func TestGAccessor(t *testing.T) {
	r := MustNew("t", 1, []float64{0, 0.25}, []float64{0.75, 1})
	if got := r.G(0, 1); got != 0.25 {
		t.Errorf("G(0,1) = %v", got)
	}
	if got := r.G(1, 0); got != 0.75 {
		t.Errorf("G(1,0) = %v", got)
	}
	for _, bad := range []struct{ b, k int }{{2, 0}, {-1, 0}, {0, 2}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("G(%d,%d) did not panic", bad.b, bad.k)
				}
			}()
			r.G(bad.b, bad.k)
		}()
	}
}

func TestVoterTable(t *testing.T) {
	for _, ell := range []int{1, 2, 3, 7} {
		r := Voter(ell)
		for k := 0; k <= ell; k++ {
			want := float64(k) / float64(ell)
			if got := r.G(0, k); got != want {
				t.Errorf("Voter(ℓ=%d).G(0,%d) = %v, want %v", ell, k, got, want)
			}
		}
		if err := r.CheckProp3(); err != nil {
			t.Errorf("Voter(ℓ=%d) fails Prop 3: %v", ell, err)
		}
		if !r.IsSymmetric() {
			t.Error("Voter should be symmetric")
		}
	}
}

func TestMinorityTableEq2(t *testing.T) {
	// Eq. 2, ℓ = 4: g = [0, 1, 1/2, 0, 1].
	r := Minority(4)
	want := []float64{0, 1, 0.5, 0, 1}
	for k, w := range want {
		if got := r.G(1, k); got != w {
			t.Errorf("Minority(4).G(1,%d) = %v, want %v", k, got, w)
		}
	}
	// ℓ = 5 (odd): g = [0, 1, 1, 0, 0, 1].
	r = Minority(5)
	want = []float64{0, 1, 1, 0, 0, 1}
	for k, w := range want {
		if got := r.G(0, k); got != w {
			t.Errorf("Minority(5).G(0,%d) = %v, want %v", k, got, w)
		}
	}
	// ℓ = 1 degenerates to the Voter.
	r = Minority(1)
	if r.G(0, 0) != 0 || r.G(0, 1) != 1 {
		t.Error("Minority(1) should copy the single sample")
	}
	if err := Minority(6).CheckProp3(); err != nil {
		t.Errorf("Minority fails Prop 3: %v", err)
	}
}

func TestMajorityTable(t *testing.T) {
	r := Majority(3)
	want := []float64{0, 0, 1, 1}
	for k, w := range want {
		if got := r.G(0, k); got != w {
			t.Errorf("Majority(3).G(0,%d) = %v, want %v", k, got, w)
		}
	}
	if got := Majority(4).G(0, 2); got != 0.5 {
		t.Errorf("Majority(4) tie = %v, want 0.5", got)
	}
	if got := ThreeMajority(); got.Name() != "3-Majority" || got.SampleSize() != 3 {
		t.Errorf("ThreeMajority = %v", got)
	}
}

func TestTwoChoiceAsymmetry(t *testing.T) {
	r := TwoChoice()
	if r.IsSymmetric() {
		t.Error("2-Choice must be opinion-aware")
	}
	if r.G(0, 1) != 0 || r.G(1, 1) != 1 {
		t.Error("2-Choice disagreement must keep the current opinion")
	}
	if err := r.CheckProp3(); err != nil {
		t.Errorf("2-Choice fails Prop 3: %v", err)
	}
}

func TestAntiVoterViolatesProp3(t *testing.T) {
	err := AntiVoter(3).CheckProp3()
	if !errors.Is(err, ErrProp3) {
		t.Errorf("AntiVoter.CheckProp3() = %v, want ErrProp3", err)
	}
}

func TestBiasedVoter(t *testing.T) {
	r := BiasedVoter(4, 0.1)
	if err := r.CheckProp3(); err != nil {
		t.Errorf("BiasedVoter must keep Prop 3: %v", err)
	}
	if got, want := r.G(0, 2), 0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("BiasedVoter.G(0,2) = %v, want %v", got, want)
	}
	// Large positive delta saturates at 1.
	if got := BiasedVoter(4, 2).G(0, 1); got != 1 {
		t.Errorf("saturated BiasedVoter.G(0,1) = %v, want 1", got)
	}
}

func TestLazyVoter(t *testing.T) {
	r := LazyVoter(2, 0.5)
	if r.IsSymmetric() {
		t.Error("LazyVoter must depend on the current opinion")
	}
	if err := r.CheckProp3(); err != nil {
		t.Errorf("LazyVoter fails Prop 3: %v", err)
	}
	// g1(k) - g0(k) = q for all k.
	for k := 0; k <= 2; k++ {
		if got := r.G(1, k) - r.G(0, k); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("laziness gap at k=%d: %v", k, got)
		}
	}
}

func TestFollower(t *testing.T) {
	r := Follower(5, 3)
	for k := 0; k <= 5; k++ {
		want := 0.0
		if k >= 3 {
			want = 1
		}
		if got := r.G(0, k); got != want {
			t.Errorf("Follower(5,3).G(0,%d) = %v, want %v", k, got, want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Follower with threshold 0 did not panic")
			}
		}()
		Follower(5, 0)
	}()
}

func TestAdoptProbVoterIsIdentity(t *testing.T) {
	// E[k/ℓ] = p for binomial samples: the Voter's adopt probability is p.
	r := Voter(5)
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		if got := r.AdoptProb(0, p); math.Abs(got-p) > 1e-12 {
			t.Errorf("Voter AdoptProb(%v) = %v", p, got)
		}
	}
}

func TestAdoptProbMinoritySymmetryPoint(t *testing.T) {
	// By the pairing k ↔ ℓ-k, the Minority adopt probability at p=1/2 is 1/2.
	for _, ell := range []int{2, 3, 4, 5, 8} {
		if got := Minority(ell).AdoptProb(0, 0.5); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("Minority(ℓ=%d) AdoptProb(0.5) = %v", ell, got)
		}
	}
}

func TestAdoptProbBoundsQuick(t *testing.T) {
	rules := []*Rule{Voter(3), Minority(4), Majority(5), TwoChoice(), BiasedVoter(3, 0.2)}
	f := func(pRaw uint16, which uint8, b bool) bool {
		p := float64(pRaw) / math.MaxUint16
		r := rules[int(which)%len(rules)]
		bi := 0
		if b {
			bi = 1
		}
		v := r.AdoptProb(bi, p)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAdoptProbMonotoneForThresholdRules(t *testing.T) {
	// For Follower rules (monotone g), AdoptProb must be monotone in p.
	r := Follower(7, 4)
	prev := -1.0
	for i := 0; i <= 100; i++ {
		p := float64(i) / 100
		v := r.AdoptProb(0, p)
		if v < prev-1e-12 {
			t.Fatalf("AdoptProb not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestAdoptProbClampsP(t *testing.T) {
	r := Voter(3)
	if got := r.AdoptProb(0, -0.5); got != 0 {
		t.Errorf("AdoptProb(-0.5) = %v", got)
	}
	if got := r.AdoptProb(0, 1.5); got != 1 {
		t.Errorf("AdoptProb(1.5) = %v", got)
	}
}

func TestWithNoise(t *testing.T) {
	r := WithNoise(Voter(3), 0.1)
	if err := r.CheckProp3(); !errors.Is(err, ErrProp3) {
		t.Errorf("noisy rule should violate Prop 3, got %v", err)
	}
	if got, want := r.G(0, 0), 0.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("noisy G(0,0) = %v, want %v", got, want)
	}
	if got, want := r.G(1, 3), 0.9; math.Abs(got-want) > 1e-12 {
		t.Errorf("noisy G(1,ℓ) = %v, want %v", got, want)
	}
	// Zero noise is the identity transform.
	r0 := WithNoise(Voter(3), 0)
	for k := 0; k <= 3; k++ {
		if r0.G(0, k) != Voter(3).G(0, k) {
			t.Error("WithNoise(r, 0) changed the rule")
		}
	}
}

func TestWithLaziness(t *testing.T) {
	r := WithLaziness(Minority(4), 0.3)
	if err := r.CheckProp3(); err != nil {
		t.Errorf("lazy rule must preserve Prop 3: %v", err)
	}
	if got, want := r.G(1, 2), 0.7*0.5+0.3; math.Abs(got-want) > 1e-12 {
		t.Errorf("lazy G(1, tie) = %v, want %v", got, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WithLaziness(r, 1) did not panic")
			}
		}()
		WithLaziness(Voter(2), 1)
	}()
}

func TestMix(t *testing.T) {
	m, err := Mix(Voter(3), Minority(3), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// k=1: voter 1/3, minority 1 → mix 2/3.
	if got, want := m.G(0, 1), (1.0/3+1)/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mix.G(0,1) = %v, want %v", got, want)
	}
	if _, err := Mix(Voter(2), Voter(3), 0.5); err == nil {
		t.Error("Mix with unequal sample sizes should fail")
	}
	if _, err := Mix(Voter(2), Voter(2), 1.5); err == nil {
		t.Error("Mix with weight > 1 should fail")
	}
}

func TestSampleSchedules(t *testing.T) {
	if got := Fixed(5).Of(1000000); got != 5 {
		t.Errorf("Fixed(5).Of = %d", got)
	}
	// √(n ln n) at n = 1024: √(1024·6.93) ≈ 84.3 → ⌈⌉ = 85.
	if got := SqrtNLogN(1).Of(1024); got != 85 {
		t.Errorf("SqrtNLogN.Of(1024) = %d, want 85", got)
	}
	if got := LogN(1).Of(1024); got != 7 {
		t.Errorf("LogN.Of(1024) = %d, want 7", got)
	}
	if got := PowerN(1, 0.5).Of(100); got != 10 {
		t.Errorf("PowerN(1,0.5).Of(100) = %d, want 10", got)
	}
	// Degenerate n never yields ℓ < 1.
	for _, s := range []SampleSchedule{SqrtNLogN(1), LogN(1), PowerN(0.001, 0.5)} {
		if got := s.Of(1); got < 1 {
			t.Errorf("%s.Of(1) = %d < 1", s.Name(), got)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Fixed(0) did not panic")
			}
		}()
		Fixed(0)
	}()
}

func TestFamilies(t *testing.T) {
	f := MinorityFamily(SqrtNLogN(1))
	r := f.For(1024)
	if r.SampleSize() != 85 {
		t.Errorf("MinorityFamily rule sample size = %d, want 85", r.SampleSize())
	}
	cf := ConstantFamily(Voter(1))
	if cf.For(10) != cf.For(1000000) {
		t.Error("ConstantFamily must return the same rule for all n")
	}
	if got := VoterFamily(Fixed(1)).Name(); got != "Voter[ℓ=1]" {
		t.Errorf("family name = %q", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewFamily(nil) did not panic")
			}
		}()
		NewFamily("bad", nil)
	}()
}

func TestRuleString(t *testing.T) {
	if got := Voter(3).String(); got != "Voter(ℓ=3)" {
		t.Errorf("String = %q", got)
	}
}

func TestTablesCopies(t *testing.T) {
	r := Voter(2)
	g0, _ := r.Tables()
	g0[0] = 0.7
	if r.G(0, 0) != 0 {
		t.Error("Tables leaked internal state")
	}
}

func TestRandomRuleValid(t *testing.T) {
	g := rng.New(55)
	for i := 0; i < 50; i++ {
		r := Random(4, g)
		if err := r.CheckProp3(); err != nil {
			t.Fatalf("random rule violates Prop 3: %v", err)
		}
		for k := 0; k <= 4; k++ {
			for _, b := range []int{0, 1} {
				if v := r.G(b, k); v < 0 || v > 1 {
					t.Fatalf("random rule entry out of range: %v", v)
				}
			}
		}
	}
	// Distinct draws give distinct rules (overwhelmingly).
	a, b := Random(3, g), Random(3, g)
	same := true
	for k := 0; k <= 3; k++ {
		if a.G(0, k) != b.G(0, k) {
			same = false
		}
	}
	if same {
		t.Error("two random rules coincided")
	}
}

func TestAdoptProbWithoutReplacement(t *testing.T) {
	r := Minority(3)
	// Degenerate exact case: n = ℓ = 3, x = 1: the sample is the whole
	// population, k = 1 surely → g(1) = 1.
	if got := r.AdoptProbWithoutReplacement(0, 3, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("exhaustive sample = %v, want 1", got)
	}
	// Convergence to the with-replacement value as n grows at fixed p.
	const p = 0.3
	prevDiff := math.Inf(1)
	for _, n := range []int64{10, 100, 1000, 10000} {
		x := int64(p * float64(n))
		with := r.AdoptProb(0, float64(x)/float64(n))
		without := r.AdoptProbWithoutReplacement(0, n, x)
		diff := math.Abs(with - without)
		if diff > prevDiff+1e-12 {
			t.Errorf("n=%d: difference %v did not shrink (prev %v)", n, diff, prevDiff)
		}
		prevDiff = diff
	}
	if prevDiff > 1e-3 {
		t.Errorf("at n=10000 the sampling models still differ by %v", prevDiff)
	}
	// Boundary cases.
	if got := Voter(2).AdoptProbWithoutReplacement(0, 50, 0); got != 0 {
		t.Errorf("x=0 gives %v, want 0", got)
	}
	if got := Voter(2).AdoptProbWithoutReplacement(1, 50, 50); got != 1 {
		t.Errorf("x=n gives %v, want 1", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ℓ > n did not panic")
			}
		}()
		Voter(5).AdoptProbWithoutReplacement(0, 3, 1)
	}()
}
