package protocol

import (
	"errors"
	"testing"
)

// TestWrapperClassification pins the historically-leaky cases: wrapper
// outputs that violate Proposition 3 used to pass every structural check
// while being unable to solve the problem. Classification at
// construction makes the leak impossible.
func TestWrapperClassification(t *testing.T) {
	voter := Voter(3)
	cases := []struct {
		name string
		rule *Rule
		want Class
	}{
		{"Voter", voter, ClassProtocol},
		{"WithNoise(Voter, 0)", WithNoise(voter, 0), ClassProtocol},
		{"WithNoise(Voter, 0.01)", WithNoise(voter, 0.01), ClassEnvironment},
		{"WithNoise(Voter, 0.5)", WithNoise(voter, 0.5), ClassEnvironment},
		{"WithNoise(Voter, 1)", WithNoise(voter, 1), ClassEnvironment},
		{"WithLaziness(Voter, 0.25)", WithLaziness(voter, 0.25), ClassProtocol},
		{"WithLaziness(Voter, 0.99)", WithLaziness(voter, 0.99), ClassProtocol},
		{"AntiVoter", AntiVoter(2), ClassEnvironment},
		{"Constant(0.375)", Constant(2, 0.375), ClassEnvironment},
	}
	for _, tc := range cases {
		if got := tc.rule.Class(); got != tc.want {
			t.Errorf("%s: Class() = %v, want %v", tc.name, got, tc.want)
		}
		err := tc.rule.Validate()
		if tc.want == ClassProtocol && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if tc.want == ClassEnvironment {
			if !errors.Is(err, ErrEnvironmentRule) {
				t.Errorf("%s: Validate() = %v, want ErrEnvironmentRule", tc.name, err)
			}
			if !errors.Is(err, ErrProp3) {
				t.Errorf("%s: Validate() = %v, want the ErrProp3 cause preserved", tc.name, err)
			}
		}
	}
}

// TestMixClassification: a mixture with any weight of noise on an
// endpoint leaks out of the protocol class; mixing two protocols stays
// inside it.
func TestMixClassification(t *testing.T) {
	voter := Voter(2)
	minority := Minority(2)
	noisy := WithNoise(voter, 0.1)

	pure, err := Mix(voter, minority, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pure.Class() != ClassProtocol || pure.Validate() != nil {
		t.Errorf("Mix(Voter, Minority): class %v, Validate %v; want protocol/nil",
			pure.Class(), pure.Validate())
	}

	leaky, err := Mix(voter, noisy, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if leaky.Class() != ClassEnvironment {
		t.Errorf("Mix(Voter, noisy): class %v, want environment", leaky.Class())
	}
	if err := leaky.Validate(); !errors.Is(err, ErrEnvironmentRule) {
		t.Errorf("Mix(Voter, noisy): Validate() = %v, want ErrEnvironmentRule", err)
	}

	// Weight 1 on the protocol endpoint discards the noise entirely.
	degenerate, err := Mix(voter, noisy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if degenerate.Class() != ClassProtocol {
		t.Errorf("Mix(Voter, noisy, w=1): class %v, want protocol", degenerate.Class())
	}
}

// TestBuiltinsAreProtocolClass sweeps the built-in catalogue: everything
// except the deliberately-broken rules must classify as a protocol.
func TestBuiltinsAreProtocolClass(t *testing.T) {
	for _, r := range []*Rule{
		Voter(1), Voter(3), Minority(2), Minority(3), Majority(3), Majority(5),
		ThreeMajority(), TwoChoice(), BiasedVoter(3, 0.125), LazyVoter(3, 0.25),
		Follower(3, 2),
	} {
		if r.Class() != ClassProtocol {
			t.Errorf("%v: class %v, want protocol", r, r.Class())
		}
	}
}
