package protocol

import (
	"fmt"
	"math"
	"sync/atomic"
)

// denseCacheLimit bounds the population size for which the cache
// preallocates a dense per-count table (16 B per count, so at most ~16 MB).
// Larger populations fall back to a map, which stays small in practice
// because a run visits only a thin band of counts around its trajectory.
const denseCacheLimit = 1 << 20

// AdoptCache memoizes a Rule's adopt probabilities (P₀, P₁) of Eq. 4 for a
// fixed population size n, keyed on the exact one-count x (so p = x/n and
// the cached values are bit-identical to calling AdoptProb directly — no
// quantization error). The O(ℓ) pmf recurrence is paid once per distinct
// count instead of once per replica-round, which is what makes batched
// replica stepping cheap in the ℓ = √(n log n) regime.
//
// An AdoptCache is NOT safe for concurrent use; give each worker goroutine
// its own cache (they warm up independently and stay coherent because the
// underlying computation is deterministic).
type AdoptCache struct {
	rule *Rule
	n    int64

	// Exactly one of dense/sparse is used, chosen by n at construction.
	dense  []cachedPair
	sparse map[int64]cachedPair

	hits, misses uint64

	// busy flags an in-flight Probs call while the package guard is on;
	// see SetAdoptCacheGuard.
	busy atomic.Int32
}

// adoptCacheGuard enables the concurrent-misuse assertion in Probs.
var adoptCacheGuard atomic.Bool

// SetAdoptCacheGuard toggles a debug assertion that catches the one
// forbidden use of AdoptCache: two goroutines sharing a cache. While on,
// Probs atomically claims the cache for the duration of the call and
// panics with a diagnostic — before the racing map/slice access can
// corrupt anything — if the cache is already claimed. The previous
// setting is returned so tests can restore it.
//
// The guard costs one atomic load per lookup when off and a CAS pair when
// on; it is meant for tests (notably under -race) and debugging sessions,
// not for steady-state sweeps.
func SetAdoptCacheGuard(on bool) (prev bool) {
	return adoptCacheGuard.Swap(on)
}

type cachedPair struct {
	p0, p1 float64
}

// NewAdoptCache returns an empty cache for rule r over a population of n
// agents. It panics if r is nil or n < 2 (mirroring the engine's
// population contract).
func NewAdoptCache(r *Rule, n int64) *AdoptCache {
	if r == nil {
		panic("protocol: NewAdoptCache called with nil rule")
	}
	if n < 2 {
		panic(fmt.Sprintf("protocol: NewAdoptCache called with population %d", n))
	}
	c := &AdoptCache{rule: r, n: n}
	if n < denseCacheLimit {
		c.dense = make([]cachedPair, n+1)
		for i := range c.dense {
			c.dense[i] = cachedPair{p0: math.NaN(), p1: math.NaN()}
		}
	} else {
		c.sparse = make(map[int64]cachedPair)
	}
	return c
}

// Rule returns the rule the cache evaluates.
func (c *AdoptCache) Rule() *Rule { return c.rule }

// N returns the population size the cache was built for.
func (c *AdoptCache) N() int64 { return c.n }

// Probs returns (P₀(x/n), P₁(x/n)), computing and memoizing them on first
// use. It panics if x is outside [0, n].
func (c *AdoptCache) Probs(x int64) (p0, p1 float64) {
	if adoptCacheGuard.Load() {
		if !c.busy.CompareAndSwap(0, 1) {
			panic("protocol: AdoptCache.Probs called concurrently; an AdoptCache is single-goroutine — give each worker its own cache")
		}
		defer c.busy.Store(0)
	}
	if x < 0 || x > c.n {
		panic(fmt.Sprintf("protocol: AdoptCache.Probs count %d outside [0,%d]", x, c.n))
	}
	if c.dense != nil {
		pair := c.dense[x]
		if !math.IsNaN(pair.p0) {
			c.hits++
			return pair.p0, pair.p1
		}
		pair = c.compute(x)
		c.dense[x] = pair
		return pair.p0, pair.p1
	}
	if pair, ok := c.sparse[x]; ok {
		c.hits++
		return pair.p0, pair.p1
	}
	pair := c.compute(x)
	c.sparse[x] = pair
	return pair.p0, pair.p1
}

func (c *AdoptCache) compute(x int64) cachedPair {
	c.misses++
	p := float64(x) / float64(c.n)
	return cachedPair{
		p0: c.rule.AdoptProb(0, p),
		p1: c.rule.AdoptProb(1, p),
	}
}

// Stats reports how many lookups were served from the cache and how many
// required an O(ℓ) evaluation, for instrumentation and tests.
func (c *AdoptCache) Stats() (hits, misses uint64) { return c.hits, c.misses }
