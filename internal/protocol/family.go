package protocol

import (
	"fmt"
	"math"
)

// SampleSchedule maps the population size n to a sample size ℓ(n). The
// paper's central parameter regimes are captured by the constructors below:
// the lower bound (Theorem 1) concerns Fixed schedules, while the Minority
// upper bound of [15] needs SqrtNLogN.
type SampleSchedule struct {
	name string
	f    func(n int64) int
}

// Of returns ℓ(n), always at least 1.
func (s SampleSchedule) Of(n int64) int {
	ell := s.f(n)
	if ell < 1 {
		ell = 1
	}
	return ell
}

// Name returns the schedule's display name.
func (s SampleSchedule) Name() string { return s.name }

// Fixed returns the constant schedule ℓ(n) = ell — the regime of Theorem 1.
func Fixed(ell int) SampleSchedule {
	if ell < 1 {
		panic(fmt.Sprintf("protocol: Fixed sample size %d < 1", ell))
	}
	return SampleSchedule{
		name: fmt.Sprintf("ℓ=%d", ell),
		f:    func(int64) int { return ell },
	}
}

// SqrtNLogN returns ℓ(n) = ⌈c·√(n ln n)⌉ — the regime in which [15] proves
// the Minority dynamics converges in O(log² n) parallel rounds.
func SqrtNLogN(c float64) SampleSchedule {
	name := "ℓ=⌈√(n ln n)⌉"
	//bitlint:floatexact display only; the unscaled name is used exactly when the caller wrote the literal 1
	if c != 1 {
		name = fmt.Sprintf("ℓ=⌈%g·√(n ln n)⌉", c)
	}
	return SampleSchedule{
		name: name,
		f: func(n int64) int {
			if n < 2 {
				return 1
			}
			return int(math.Ceil(c * math.Sqrt(float64(n)*math.Log(float64(n)))))
		},
	}
}

// LogN returns ℓ(n) = ⌈c·ln n⌉ — the boundary regime discussed in §1.2,
// where one-round convergence from distant configurations becomes possible.
func LogN(c float64) SampleSchedule {
	name := "ℓ=⌈ln n⌉"
	//bitlint:floatexact display only; the unscaled name is used exactly when the caller wrote the literal 1
	if c != 1 {
		name = fmt.Sprintf("ℓ=⌈%g·ln n⌉", c)
	}
	return SampleSchedule{
		name: name,
		f: func(n int64) int {
			if n < 2 {
				return 1
			}
			return int(math.Ceil(c * math.Log(float64(n))))
		},
	}
}

// PowerN returns ℓ(n) = ⌈c·n^alpha⌉, for exploring the open-question
// territory between constant and √(n log n) sample sizes (experiment X1).
func PowerN(c, alpha float64) SampleSchedule {
	return SampleSchedule{
		name: fmt.Sprintf("ℓ=⌈%g·n^%g⌉", c, alpha),
		f: func(n int64) int {
			return int(math.Ceil(c * math.Pow(float64(n), alpha)))
		},
	}
}

// Family is a protocol family {g_n}: one rule per population size, which is
// how the paper defines a protocol (the functions g_n^[b] may depend on n).
type Family struct {
	name string
	rule func(n int64) *Rule
}

// NewFamily returns a family with the given per-n rule constructor.
func NewFamily(name string, rule func(n int64) *Rule) *Family {
	if rule == nil {
		panic("protocol: NewFamily requires a rule constructor")
	}
	return &Family{name: name, rule: rule}
}

// ConstantFamily wraps a single n-independent rule as a family.
func ConstantFamily(r *Rule) *Family {
	return &Family{name: r.Name(), rule: func(int64) *Rule { return r }}
}

// VoterFamily is the Voter dynamics under the given sample-size schedule.
// (The Voter's behaviour does not depend on ℓ; the schedule only matters
// for apples-to-apples comparisons of sampling cost.)
func VoterFamily(s SampleSchedule) *Family {
	return &Family{
		name: "Voter[" + s.Name() + "]",
		rule: func(n int64) *Rule { return Voter(s.Of(n)) },
	}
}

// MinorityFamily is the Minority dynamics under the given schedule.
func MinorityFamily(s SampleSchedule) *Family {
	return &Family{
		name: "Minority[" + s.Name() + "]",
		rule: func(n int64) *Rule { return Minority(s.Of(n)) },
	}
}

// MajorityFamily is the Majority dynamics under the given schedule.
func MajorityFamily(s SampleSchedule) *Family {
	return &Family{
		name: "Majority[" + s.Name() + "]",
		rule: func(n int64) *Rule { return Majority(s.Of(n)) },
	}
}

// Name returns the family's display name.
func (f *Family) Name() string { return f.name }

// For returns the rule this family prescribes for population size n.
func (f *Family) For(n int64) *Rule { return f.rule(n) }
