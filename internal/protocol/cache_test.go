package protocol

import (
	"math"
	"testing"
)

// TestAdoptCacheMatchesAdoptProb: cached values must agree with the direct
// Eq. 4 evaluation to 1e-12 (they are in fact the same computation, so we
// additionally demand bit equality) across rules, sample sizes, and both
// storage regimes.
func TestAdoptCacheMatchesAdoptProb(t *testing.T) {
	bigEll := SqrtNLogN(1).Of(4096)
	rules := []*Rule{
		Voter(1), Voter(3), Minority(3), Minority(bigEll),
		Majority(5), TwoChoice(), BiasedVoter(3, 0.2), AntiVoter(2),
	}
	for _, n := range []int64{2, 64, 4096, denseCacheLimit + 7} {
		for _, r := range rules {
			c := NewAdoptCache(r, n)
			counts := []int64{0, 1, n / 3, n / 2, n - 1, n}
			for pass := 0; pass < 2; pass++ { // second pass exercises hits
				for _, x := range counts {
					p0, p1 := c.Probs(x)
					p := float64(x) / float64(n)
					w0, w1 := r.AdoptProb(0, p), r.AdoptProb(1, p)
					if math.Abs(p0-w0) > 1e-12 || math.Abs(p1-w1) > 1e-12 {
						t.Fatalf("%v n=%d x=%d: cache (%v,%v) vs direct (%v,%v)",
							r, n, x, p0, p1, w0, w1)
					}
					if p0 != w0 || p1 != w1 {
						t.Errorf("%v n=%d x=%d: cache not bit-identical", r, n, x)
					}
				}
			}
		}
	}
}

// TestAdoptCacheHitAccounting: repeated lookups of the same count must be
// served from memory.
func TestAdoptCacheHitAccounting(t *testing.T) {
	c := NewAdoptCache(Minority(3), 100)
	for i := 0; i < 10; i++ {
		c.Probs(40)
	}
	c.Probs(41)
	hits, misses := c.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (distinct counts)", misses)
	}
	if hits != 9 {
		t.Errorf("hits = %d, want 9", hits)
	}
	if c.N() != 100 || c.Rule().Name() != Minority(3).Name() {
		t.Error("accessors disagree with construction")
	}
}

// TestAdoptCacheSparseRegime: populations above the dense limit must work
// through the map path.
func TestAdoptCacheSparseRegime(t *testing.T) {
	const n = int64(denseCacheLimit) * 4
	c := NewAdoptCache(Voter(1), n)
	p0, p1 := c.Probs(n / 2)
	if math.Abs(p0-0.5) > 1e-12 || math.Abs(p1-0.5) > 1e-12 {
		t.Errorf("Voter at p=1/2: got (%v,%v), want (0.5,0.5)", p0, p1)
	}
}

func TestAdoptCachePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil rule":    func() { NewAdoptCache(nil, 10) },
		"tiny n":      func() { NewAdoptCache(Voter(1), 1) },
		"count below": func() { NewAdoptCache(Voter(1), 10).Probs(-1) },
		"count above": func() { NewAdoptCache(Voter(1), 10).Probs(11) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("did not panic")
				}
			}()
			f()
		})
	}
}
