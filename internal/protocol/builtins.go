package protocol

import (
	"fmt"

	"bitspread/internal/rng"
)

// Voter returns the Voter dynamics (Protocol 1): adopt the opinion of one
// uniformly random sample. For any sample size the rule is g(k) = k/ℓ,
// since a uniformly random element of the sample is 1 with probability k/ℓ.
func Voter(sampleSize int) *Rule {
	g := make([]float64, sampleSize+1)
	for k := range g {
		g[k] = float64(k) / float64(sampleSize)
	}
	return MustNew("Voter", sampleSize, g, g)
}

// Minority returns the Minority dynamics (Protocol 2, Eq. 2): adopt the
// unanimous opinion if the sample is unanimous, otherwise adopt the
// minority opinion of the sample; an exact tie (k = ℓ/2) is broken
// uniformly at random.
func Minority(sampleSize int) *Rule {
	g := make([]float64, sampleSize+1)
	for k := range g {
		g[k] = minorityG(k, sampleSize)
	}
	return MustNew("Minority", sampleSize, g, g)
}

// minorityG is g^minority(k) from Eq. 2.
func minorityG(k, ell int) float64 {
	switch {
	case k == ell:
		return 1
	case k == 0:
		return 0
	case 2*k < ell:
		return 1 // 0 < k < ℓ/2: opinion 1 is the minority, adopt it
	case 2*k == ell:
		return 0.5 // exact tie
	default:
		return 0 // ℓ/2 < k < ℓ: opinion 0 is the minority
	}
}

// Majority returns the Majority dynamics: adopt the majority opinion of the
// sample, ties broken uniformly at random. Majority satisfies Proposition 3
// yet fails bit dissemination — both consensuses are strongly attracting,
// so it cannot escape a wrong near-consensus (experiment X2).
func Majority(sampleSize int) *Rule {
	g := make([]float64, sampleSize+1)
	for k := range g {
		switch {
		case 2*k > sampleSize:
			g[k] = 1
		case 2*k == sampleSize:
			g[k] = 0.5
		default:
			g[k] = 0
		}
	}
	return MustNew("Majority", sampleSize, g, g)
}

// ThreeMajority returns the classical 3-majority dynamics (Majority with
// ℓ = 3), kept as a named constructor because it is a standard consensus
// baseline in the literature ([16]).
func ThreeMajority() *Rule {
	r := Majority(3)
	r2 := *r
	r2.name = "3-Majority"
	return &r2
}

// TwoChoice returns the 2-Choice dynamics: sample two opinions; if they
// agree, adopt them, otherwise keep the current opinion. This is the
// simplest opinion-aware (asymmetric) rule: g^[b](1) = b.
func TwoChoice() *Rule {
	return MustNew("2-Choice", 2,
		[]float64{0, 0, 1}, // current opinion 0: adopt 1 only on a 1-1 sample
		[]float64{0, 1, 1}, // current opinion 1: keep 1 unless seeing 0-0
	)
}

// AntiVoter returns the anti-voter dynamics: adopt the opposite of one
// random sample, g(k) = 1 - k/ℓ. It violates Proposition 3 on both ends
// and is used as a lower-bound foil and validator test case.
func AntiVoter(sampleSize int) *Rule {
	g := make([]float64, sampleSize+1)
	for k := range g {
		g[k] = 1 - float64(k)/float64(sampleSize)
	}
	return MustNew("AntiVoter", sampleSize, g, g)
}

// BiasedVoter returns a Voter-like rule whose interior adoption
// probabilities are tilted by delta toward opinion 1:
// g(k) = clamp(k/ℓ + delta) for 0 < k < ℓ, with g(0)=0 and g(ℓ)=1 kept so
// Proposition 3 still holds. Its bias polynomial F_n is strictly positive
// on an interior interval, which makes it the canonical "Case 2" rule of
// Theorem 12 (Figure 3). delta may be negative for a "Case 1" tilt.
func BiasedVoter(sampleSize int, delta float64) *Rule {
	g := make([]float64, sampleSize+1)
	for k := 1; k < sampleSize; k++ {
		v := float64(k)/float64(sampleSize) + delta
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		g[k] = v
	}
	g[0] = 0
	g[sampleSize] = 1
	return MustNew(fmt.Sprintf("BiasedVoter(δ=%+g)", delta), sampleSize, g, g)
}

// LazyVoter returns the lazy Voter: with probability 1-q behave as the
// Voter, with probability q keep the current opinion. Its bias polynomial
// is identically zero, like the Voter's, so it falls under Lemma 11.
func LazyVoter(sampleSize int, q float64) *Rule {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("protocol: LazyVoter laziness %v outside [0,1]", q))
	}
	g0 := make([]float64, sampleSize+1)
	g1 := make([]float64, sampleSize+1)
	for k := range g0 {
		voter := float64(k) / float64(sampleSize)
		g0[k] = (1 - q) * voter // lazy keep of opinion 0
		g1[k] = (1-q)*voter + q // lazy keep of opinion 1
	}
	return MustNew(fmt.Sprintf("LazyVoter(q=%g)", q), sampleSize, g0, g1)
}

// Follower returns the rule that adopts opinion 1 iff at least threshold of
// the ℓ samples are 1 (a deterministic threshold rule). threshold must be
// in [1, ℓ]; Majority with odd ℓ is Follower with threshold (ℓ+1)/2.
func Follower(sampleSize, threshold int) *Rule {
	if threshold < 1 || threshold > sampleSize {
		panic(fmt.Sprintf("protocol: Follower threshold %d outside [1,%d]", threshold, sampleSize))
	}
	g := make([]float64, sampleSize+1)
	for k := threshold; k <= sampleSize; k++ {
		g[k] = 1
	}
	return MustNew(fmt.Sprintf("Follower(θ=%d)", threshold), sampleSize, g, g)
}

// Constant returns the rule that adopts opinion 1 with fixed probability p
// on every activation, ignoring both the observation and the current
// opinion. For 0 < p < 1 it violates Proposition 3 on both ends (no
// consensus is absorbing) — like AntiVoter it is an environment/foil rule,
// useful as a mixing baseline and a validator test case.
func Constant(sampleSize int, p float64) *Rule {
	if p < 0 || p > 1 || p != p {
		panic(fmt.Sprintf("protocol: Constant probability %v outside [0,1]", p))
	}
	g := make([]float64, sampleSize+1)
	for k := range g {
		g[k] = p
	}
	return MustNew(fmt.Sprintf("Constant(p=%g)", p), sampleSize, g, g)
}

// Random returns a uniformly random valid rule with the given sample
// size: every interior table entry (for both own-opinion tables) is drawn
// uniformly from [0, 1], with g^[0](0) = 0 and g^[1](ℓ) = 1 pinned so
// Proposition 3 holds. Sampling rule space is the empirical analogue of
// Theorem 1's "for every protocol" quantifier (experiment X10).
func Random(sampleSize int, g *rng.RNG) *Rule {
	g0 := make([]float64, sampleSize+1)
	g1 := make([]float64, sampleSize+1)
	for k := 0; k <= sampleSize; k++ {
		g0[k] = g.Float64()
		g1[k] = g.Float64()
	}
	g0[0] = 0
	g1[sampleSize] = 1
	return MustNew("Random", sampleSize, g0, g1)
}
