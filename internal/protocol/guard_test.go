package protocol

import (
	"sync"
	"testing"
)

// TestAdoptCacheGuardCatchesSharing: with the guard on, a second Probs
// call arriving while one is in flight must panic with a diagnostic
// instead of silently racing on the memo table. The in-flight call is
// simulated deterministically by pre-claiming the busy flag.
func TestAdoptCacheGuardCatchesSharing(t *testing.T) {
	prev := SetAdoptCacheGuard(true)
	defer SetAdoptCacheGuard(prev)

	c := NewAdoptCache(Voter(1), 16)
	c.busy.Store(1)
	defer func() {
		if recover() == nil {
			t.Error("concurrent Probs did not panic under the guard")
		}
	}()
	c.Probs(4)
}

// TestAdoptCacheGuardOffIsInert: the busy flag is ignored while the guard
// is off, so production sweeps pay only one atomic load per lookup.
func TestAdoptCacheGuardOffIsInert(t *testing.T) {
	prev := SetAdoptCacheGuard(false)
	defer SetAdoptCacheGuard(prev)

	c := NewAdoptCache(Voter(1), 16)
	c.busy.Store(1) // a stale claim must not matter when the guard is off
	p0, p1 := c.Probs(4)
	if p0 != 0.25 || p1 != 0.25 {
		t.Errorf("Probs = %v, %v; want 0.25, 0.25", p0, p1)
	}
}

// TestAdoptCacheGuardReleasesAfterCall: the claim is scoped to one call,
// so sequential use on a single goroutine is untouched by the guard.
func TestAdoptCacheGuardReleasesAfterCall(t *testing.T) {
	prev := SetAdoptCacheGuard(true)
	defer SetAdoptCacheGuard(prev)

	c := NewAdoptCache(Voter(1), 16)
	for x := int64(0); x <= 16; x++ {
		c.Probs(x)
		c.Probs(x) // memoized second hit, still one claim per call
	}
	if hits, _ := c.Stats(); hits == 0 {
		t.Error("memoization broken under the guard")
	}
}

// TestAdoptCacheOnePerGoroutineContract documents the supported pattern —
// one cache per worker goroutine — and, when run with -race, certifies it
// clean: independent caches share nothing but the immutable rule.
func TestAdoptCacheOnePerGoroutineContract(t *testing.T) {
	prev := SetAdoptCacheGuard(true)
	defer SetAdoptCacheGuard(prev)

	rule := Voter(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := NewAdoptCache(rule, 64)
			for i := int64(0); i < 1000; i++ {
				c.Probs((seed + i*7) % 65)
			}
		}(int64(w))
	}
	wg.Wait()
}
