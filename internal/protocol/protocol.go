// Package protocol implements the paper's protocol formalism for the
// self-stabilizing bit-dissemination problem (Section 1.1).
//
// A memory-less protocol with sample size ℓ is a pair of functions
//
//	g^[b] : {0,…,ℓ} → [0,1],   b ∈ {0,1},
//
// where g^[b](k) is the probability that an agent currently holding opinion
// b adopts opinion 1 after observing k ones among its ℓ uniform samples.
// The package provides the Rule type realizing this definition, the
// built-in dynamics studied by the paper (Voter, Minority) and its related
// work (Majority, 2-Choice, …), structural validation (Proposition 3), and
// the failure-injection wrappers used by the adversarial experiments.
package protocol

import (
	"errors"
	"fmt"
	"math"

	"bitspread/internal/dist"
)

// Sentinel validation errors, so callers can test causes with errors.Is.
var (
	// ErrSampleSize is returned when the declared sample size is < 1.
	ErrSampleSize = errors.New("protocol: sample size must be at least 1")
	// ErrTableLength is returned when a probability table does not have
	// exactly ℓ+1 entries.
	ErrTableLength = errors.New("protocol: probability table must have sample size + 1 entries")
	// ErrProbRange is returned when a table entry lies outside [0, 1].
	ErrProbRange = errors.New("protocol: probabilities must lie in [0, 1]")
	// ErrProp3 is returned by CheckProp3 when the necessary conditions of
	// Proposition 3 (g^[0](0)=0 and g^[1](ℓ)=1) are violated, i.e. the rule
	// cannot keep a consensus absorbing and therefore cannot solve
	// bit dissemination.
	ErrProp3 = errors.New("protocol: violates Proposition 3 (consensus is not absorbing)")
	// ErrEnvironmentRule is returned by Validate for environment-class
	// rules: tables that model noise or failures (e.g. WithNoise output)
	// rather than a protocol an agent could run to solve the problem.
	ErrEnvironmentRule = errors.New("protocol: environment-class rule cannot solve bit dissemination")
)

// Class separates the two kinds of Rule values this package constructs.
// The distinction closes a historical leak: wrappers like WithNoise
// deliberately produce tables violating Proposition 3 — they model the
// *environment* (noise, failures), not a runnable protocol — yet such
// tables passed every structural check and could reach contexts that
// assume stabilization is possible. Every Rule is classified at
// construction; Validate gates the protocol-only contexts.
type Class int

const (
	// ClassProtocol marks rules satisfying Proposition 3: both consensus
	// configurations are absorbing, so the rule is a candidate solution to
	// the bit-dissemination problem.
	ClassProtocol Class = iota
	// ClassEnvironment marks rules violating Proposition 3: valid as
	// failure-injection models, never as protocols.
	ClassEnvironment
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassProtocol:
		return "protocol"
	case ClassEnvironment:
		return "environment"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Rule is a concrete memory-less update rule for a fixed sample size.
// Construct instances with New or NewSymmetric; the zero value is invalid.
// A Rule is immutable after construction and safe for concurrent use.
type Rule struct {
	name  string
	ell   int
	class Class
	g0    []float64 // g^[0](k): adopt-1 probability when currently holding 0
	g1    []float64 // g^[1](k): adopt-1 probability when currently holding 1
}

// New returns a rule with the given adopt-1 probability tables, indexed by
// the number k of ones observed among the ℓ samples. g0 applies to agents
// currently holding opinion 0, g1 to agents holding 1; both must have
// exactly ℓ+1 entries in [0, 1]. The tables are copied.
func New(name string, sampleSize int, g0, g1 []float64) (*Rule, error) {
	if sampleSize < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrSampleSize, sampleSize)
	}
	if len(g0) != sampleSize+1 || len(g1) != sampleSize+1 {
		return nil, fmt.Errorf("%w (ℓ=%d, len(g0)=%d, len(g1)=%d)",
			ErrTableLength, sampleSize, len(g0), len(g1))
	}
	for k, tbl := range [][]float64{g0, g1} {
		for i, p := range tbl {
			if p < 0 || p > 1 || p != p {
				return nil, fmt.Errorf("%w (g%d(%d) = %v)", ErrProbRange, k, i, p)
			}
		}
	}
	r := &Rule{
		name: name,
		ell:  sampleSize,
		g0:   append([]float64(nil), g0...),
		g1:   append([]float64(nil), g1...),
	}
	if r.CheckProp3() != nil {
		r.class = ClassEnvironment
	}
	return r, nil
}

// NewSymmetric returns an opinion-oblivious rule, g^[0] = g^[1] = g. Most of
// the classical dynamics (Voter, Minority, Majority) are of this form.
func NewSymmetric(name string, sampleSize int, g []float64) (*Rule, error) {
	return New(name, sampleSize, g, g)
}

// MustNew is New panicking on error, for statically-correct tables in
// examples and tests.
func MustNew(name string, sampleSize int, g0, g1 []float64) *Rule {
	r, err := New(name, sampleSize, g0, g1)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the rule's human-readable name.
func (r *Rule) Name() string { return r.name }

// SampleSize returns ℓ, the number of opinions sampled per activation.
func (r *Rule) SampleSize() int { return r.ell }

// G returns g^[b](k), the probability of adopting opinion 1 given current
// opinion b and k ones among the ℓ samples. It panics if b is not 0 or 1 or
// k is outside [0, ℓ].
func (r *Rule) G(b, k int) float64 {
	if k < 0 || k > r.ell {
		panic(fmt.Sprintf("protocol: k=%d outside [0,%d]", k, r.ell))
	}
	switch b {
	case 0:
		return r.g0[k]
	case 1:
		return r.g1[k]
	default:
		panic(fmt.Sprintf("protocol: opinion %d is not binary", b))
	}
}

// Tables returns copies of the two probability tables (g^[0], g^[1]).
func (r *Rule) Tables() (g0, g1 []float64) {
	return append([]float64(nil), r.g0...), append([]float64(nil), r.g1...)
}

// IsSymmetric reports whether g^[0] = g^[1], i.e. the rule ignores the
// agent's own opinion.
func (r *Rule) IsSymmetric() bool {
	for k := range r.g0 {
		//bitlint:floatexact symmetry means the two stored tables are the same constants, bit for bit
		if r.g0[k] != r.g1[k] {
			return false
		}
	}
	return true
}

// CheckProp3 verifies the necessary conditions of Proposition 3: a rule can
// only solve the bit-dissemination problem if g^[0](0) = 0 and g^[1](ℓ) = 1,
// which make both consensus configurations absorbing. It returns nil when
// the conditions hold and an error wrapping ErrProp3 otherwise.
func (r *Rule) CheckProp3() error {
	//bitlint:floatexact Proposition 3 requires the absorbing probabilities to be exactly 0 and 1
	if r.g0[0] != 0 {
		return fmt.Errorf("%w: g[0](0) = %v, want 0", ErrProp3, r.g0[0])
	}
	//bitlint:floatexact Proposition 3 requires the absorbing probabilities to be exactly 0 and 1
	if r.g1[r.ell] != 1 {
		return fmt.Errorf("%w: g[1](ℓ) = %v, want 1", ErrProp3, r.g1[r.ell])
	}
	return nil
}

// Class returns the rule's classification, fixed at construction:
// ClassProtocol iff the tables satisfy Proposition 3.
func (r *Rule) Class() Class { return r.class }

// Validate gates protocol-only contexts (job submission, the VM
// registry, search spaces): it returns nil for ClassProtocol rules and
// an error wrapping both ErrEnvironmentRule and the underlying ErrProp3
// cause otherwise. Environment-class rules remain fully usable with the
// engines — the adversarial experiments depend on that — but anything
// that promises stabilization must call Validate first.
func (r *Rule) Validate() error {
	if r.class == ClassProtocol {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrEnvironmentRule, r.CheckProp3())
}

// AdoptProb returns P_b(p) = Σ_k C(ℓ,k) p^k (1-p)^{ℓ-k} g^[b](k): the
// probability that an agent with opinion b adopts opinion 1 when the
// current global fraction of ones is p (Eq. 4 of the paper). p is clamped
// to [0, 1].
//
// The sum is evaluated by a multiplicative pmf recurrence spreading
// outward from the binomial mode, so the cost is O(ℓ) cheap operations
// (three Lgamma calls total) and large sample sizes like ℓ = √(n log n)
// stay fast; starting at the mode keeps the recurrence underflow-safe —
// terms can only shrink moving away from it.
func (r *Rule) AdoptProb(b int, p float64) float64 {
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	tbl := r.g0
	if b == 1 {
		tbl = r.g1
	}
	ell := r.ell
	switch {
	//bitlint:floatexact p was just clamped; the degenerate pmf short-cuts apply only at the exact endpoints
	case p == 0:
		return tbl[0]
	//bitlint:floatexact p was just clamped; the degenerate pmf short-cuts apply only at the exact endpoints
	case p == 1:
		return tbl[ell]
	}

	mode := int(float64(ell+1) * p)
	if mode > ell {
		mode = ell
	}
	logPmf := dist.LogChoose(int64(ell), int64(mode)) +
		float64(mode)*math.Log(p) + float64(ell-mode)*math.Log1p(-p)
	pmfMode := math.Exp(logPmf)
	ratio := p / (1 - p)

	sum := pmfMode * tbl[mode]
	cur := pmfMode
	for k := mode; k < ell && cur > 0; k++ {
		cur *= float64(ell-k) / float64(k+1) * ratio
		sum += cur * tbl[k+1]
	}
	cur = pmfMode
	for k := mode; k > 0 && cur > 0; k-- {
		cur *= float64(k) / float64(ell-k+1) / ratio
		sum += cur * tbl[k-1]
	}

	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// SampleCountPMF fills dst[k] with the Binomial(ℓ, p) probability of
// observing exactly k ones among ℓ uniform samples when the global fraction
// of ones is p — the distribution of the observation an agent conditions
// its update on. dst must have ℓ+1 entries; p is clamped to [0, 1].
//
// The pmf is evaluated by the same mode-outward multiplicative recurrence
// as AdoptProb (O(ℓ) with three Lgamma calls, underflow-safe because terms
// only shrink away from the mode). The aggregated agent engine uses it to
// split each opinion class over observation counts.
func SampleCountPMF(ell int, p float64, dst []float64) {
	if len(dst) != ell+1 {
		panic(fmt.Sprintf("protocol: SampleCountPMF dst has %d entries, want ℓ+1 = %d", len(dst), ell+1))
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	for k := range dst {
		dst[k] = 0
	}
	switch {
	//bitlint:floatexact p was just clamped; the degenerate pmf short-cuts apply only at the exact endpoints
	case p == 0:
		dst[0] = 1
		return
	//bitlint:floatexact p was just clamped; the degenerate pmf short-cuts apply only at the exact endpoints
	case p == 1:
		dst[ell] = 1
		return
	}

	mode := int(float64(ell+1) * p)
	if mode > ell {
		mode = ell
	}
	logPmf := dist.LogChoose(int64(ell), int64(mode)) +
		float64(mode)*math.Log(p) + float64(ell-mode)*math.Log1p(-p)
	pmfMode := math.Exp(logPmf)
	ratio := p / (1 - p)

	dst[mode] = pmfMode
	cur := pmfMode
	for k := mode; k < ell && cur > 0; k++ {
		cur *= float64(ell-k) / float64(k+1) * ratio
		dst[k+1] = cur
	}
	cur = pmfMode
	for k := mode; k > 0 && cur > 0; k-- {
		cur *= float64(k) / float64(ell-k+1) / ratio
		dst[k-1] = cur
	}
}

// String implements fmt.Stringer.
func (r *Rule) String() string {
	return fmt.Sprintf("%s(ℓ=%d)", r.name, r.ell)
}

// AdoptProbWithoutReplacement returns the adopt-1 probability when the ℓ
// samples are drawn as *distinct* agents from a population of n with x
// ones (hypergeometric sampling), the ablation of the paper's
// with-replacement model. As n grows with x/n fixed it converges to
// AdoptProb — quantifying why the modeling choice is immaterial at scale.
// It panics if ℓ > n or the counts are inconsistent.
func (r *Rule) AdoptProbWithoutReplacement(b int, n, x int64) float64 {
	ell := int64(r.ell)
	if ell > n || x < 0 || x > n {
		panic(fmt.Sprintf("protocol: invalid hypergeometric parameters n=%d x=%d ℓ=%d", n, x, ell))
	}
	tbl := r.g0
	if b == 1 {
		tbl = r.g1
	}
	sum := 0.0
	for k := int64(0); k <= ell; k++ {
		//bitlint:floatexact sparse skip; a bit-exact zero table entry contributes nothing to the sum
		if tbl[k] == 0 {
			continue
		}
		// Hypergeometric pmf: C(x,k)·C(n-x,ℓ-k)/C(n,ℓ), in log space.
		logP := dist.LogChoose(x, k) + dist.LogChoose(n-x, ell-k) - dist.LogChoose(n, ell)
		if math.IsInf(logP, -1) {
			continue
		}
		sum += math.Exp(logP) * tbl[k]
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}
