package protocol

import (
	"math"
	"testing"

	"bitspread/internal/dist"
)

// Reference pmf straight from the definition, in log space.
func binomPMF(ell, k int, p float64) float64 {
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == ell {
			return 1
		}
		return 0
	}
	logP := dist.LogChoose(int64(ell), int64(k)) +
		float64(k)*math.Log(p) + float64(ell-k)*math.Log1p(-p)
	return math.Exp(logP)
}

func TestSampleCountPMFMatchesDefinition(t *testing.T) {
	for _, ell := range []int{1, 3, 7, 50, 500} {
		dst := make([]float64, ell+1)
		for _, p := range []float64{0, 1e-9, 0.01, 0.3, 0.5, 0.75, 0.999, 1, -0.5, 1.5} {
			SampleCountPMF(ell, p, dst)
			clamped := math.Min(math.Max(p, 0), 1)
			sum := 0.0
			for k := 0; k <= ell; k++ {
				want := binomPMF(ell, k, clamped)
				if math.Abs(dst[k]-want) > 1e-12 {
					t.Fatalf("ℓ=%d p=%v k=%d: pmf %v, want %v", ell, p, k, dst[k], want)
				}
				sum += dst[k]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("ℓ=%d p=%v: pmf sums to %v", ell, p, sum)
			}
		}
	}
}

// The aggregated engine's exactness rests on Σ_k pmf(k)·g^[b](k) being
// Eq. 4; check the pmf against AdoptProb across rules and fractions.
func TestSampleCountPMFConsistentWithAdoptProb(t *testing.T) {
	rules := []*Rule{Voter(1), Minority(3), Majority(5), Minority(17)}
	for _, r := range rules {
		ell := r.SampleSize()
		g0, g1 := r.Tables()
		pmf := make([]float64, ell+1)
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
			SampleCountPMF(ell, p, pmf)
			for b, tbl := range [][]float64{g0, g1} {
				sum := 0.0
				for k := 0; k <= ell; k++ {
					sum += pmf[k] * tbl[k]
				}
				if want := r.AdoptProb(b, p); math.Abs(sum-want) > 1e-12 {
					t.Errorf("%v b=%d p=%v: Σ pmf·g = %v, AdoptProb = %v", r, b, p, sum, want)
				}
			}
		}
	}
}

func TestSampleCountPMFPanicsOnBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong dst length")
		}
	}()
	SampleCountPMF(3, 0.5, make([]float64, 3))
}
