package protocol

import "fmt"

// WithNoise returns a rule that follows r but then flips the decided
// opinion independently with probability flip. This is the classical
// ε-noise failure injection: for flip > 0 the resulting rule violates
// Proposition 3 (no configuration is absorbing), so it cannot solve the
// bit-dissemination problem — which is exactly what the adversarial
// experiments demonstrate.
func WithNoise(r *Rule, flip float64) *Rule {
	if flip < 0 || flip > 1 {
		panic(fmt.Sprintf("protocol: noise level %v outside [0,1]", flip))
	}
	transform := func(tbl []float64) []float64 {
		out := make([]float64, len(tbl))
		for k, p := range tbl {
			// Decided 1 and not flipped, or decided 0 and flipped.
			out[k] = p*(1-flip) + (1-p)*flip
		}
		return out
	}
	return MustNew(
		fmt.Sprintf("%s+noise(%g)", r.Name(), flip),
		r.SampleSize(),
		transform(r.g0),
		transform(r.g1),
	)
}

// WithLaziness returns a rule in which each activation is independently
// "lost" with probability q: a lost activation keeps the current opinion
// (g'^[b](k) = q·b + (1-q)·g^[b](k)). This models crash/omission rounds.
// Unlike WithNoise it preserves Proposition 3, merely slowing the dynamics
// by a factor 1/(1-q).
func WithLaziness(r *Rule, q float64) *Rule {
	if q < 0 || q >= 1 {
		panic(fmt.Sprintf("protocol: laziness %v outside [0,1)", q))
	}
	g0 := make([]float64, r.SampleSize()+1)
	g1 := make([]float64, r.SampleSize()+1)
	for k := range g0 {
		g0[k] = (1 - q) * r.g0[k]
		g1[k] = (1-q)*r.g1[k] + q
	}
	return MustNew(
		fmt.Sprintf("%s+lazy(%g)", r.Name(), q),
		r.SampleSize(),
		g0, g1,
	)
}

// Mix returns the rule that follows a with probability w and b with
// probability 1-w on each activation. Both rules must have the same sample
// size. Mixtures let experiments interpolate between dynamics (e.g. a
// Voter–Minority blend) when probing the root structure of F_n.
func Mix(a, b *Rule, w float64) (*Rule, error) {
	if a.SampleSize() != b.SampleSize() {
		return nil, fmt.Errorf("protocol: cannot mix sample sizes %d and %d",
			a.SampleSize(), b.SampleSize())
	}
	if w < 0 || w > 1 {
		return nil, fmt.Errorf("protocol: mix weight %v outside [0,1]", w)
	}
	g0 := make([]float64, a.SampleSize()+1)
	g1 := make([]float64, a.SampleSize()+1)
	for k := range g0 {
		g0[k] = w*a.g0[k] + (1-w)*b.g0[k]
		g1[k] = w*a.g1[k] + (1-w)*b.g1[k]
	}
	return New(
		fmt.Sprintf("Mix(%g·%s, %g·%s)", w, a.Name(), 1-w, b.Name()),
		a.SampleSize(), g0, g1,
	)
}
