package protocol

import (
	"math"
	"testing"
)

// FuzzAdoptProb fuzzes Eq. 4 evaluation: for arbitrary valid tables and
// any p, the result must be a probability, and at the endpoints it must
// match the table exactly.
func FuzzAdoptProb(f *testing.F) {
	f.Add(0.3, 0.9, 0.1, 0.5, uint8(6))
	f.Fuzz(func(t *testing.T, g1v, g2v, g3v, p float64, ellRaw uint8) {
		ell := int(ellRaw)%12 + 1
		for _, v := range []float64{g1v, g2v, g3v} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Skip()
			}
		}
		if math.IsNaN(p) {
			t.Skip()
		}
		tbl := make([]float64, ell+1)
		vals := []float64{g1v, g2v, g3v}
		for k := 1; k < ell; k++ {
			tbl[k] = vals[k%3]
		}
		tbl[0], tbl[ell] = 0, 1
		r := MustNew("fuzz", ell, tbl, tbl)

		v := r.AdoptProb(0, p)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("AdoptProb = %v for p=%v, ℓ=%d", v, p, ell)
		}
		if got := r.AdoptProb(1, 0); got != 0 {
			t.Fatalf("AdoptProb(·, 0) = %v, want g(0)=0", got)
		}
		if got := r.AdoptProb(1, 1); got != 1 {
			t.Fatalf("AdoptProb(·, 1) = %v, want g(ℓ)=1", got)
		}
	})
}

// FuzzNewValidation fuzzes the constructor: it must never accept an
// invalid table nor panic.
func FuzzNewValidation(f *testing.F) {
	f.Add(uint8(2), 0.5, 1.5)
	f.Fuzz(func(t *testing.T, ellRaw uint8, a, b float64) {
		ell := int(ellRaw) % 8
		tbl := []float64{a, b}
		for len(tbl) < ell+1 {
			tbl = append(tbl, a)
		}
		r, err := New("fuzz", ell, tbl[:min(len(tbl), ell+1)], tbl[:min(len(tbl), ell+1)])
		if err != nil {
			return
		}
		// Accepted: every entry must be a valid probability.
		for k := 0; k <= r.SampleSize(); k++ {
			v := r.G(0, k)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("accepted invalid table entry %v", v)
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
