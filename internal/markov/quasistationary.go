package markov

import (
	"fmt"
	"math"
)

// QuasiStationary computes the quasi-stationary distribution of the chain
// restricted to the given transient set: the left Perron eigenvector of
// the substochastic submatrix, normalized to a probability vector, found
// by normalized power iteration. It returns the distribution over all
// states (zero outside the set) together with the per-step escape rate
// 1-λ, where λ is the Perron eigenvalue.
//
// For a metastable trap — like the Minority dynamics parked at its
// interior attractor (experiment X6) — the expected absorption time from
// quasi-stationarity is exactly 1/(1-λ), which cross-validates the
// hitting-time solves on an independent numerical path.
func (c *Chain) QuasiStationary(transient map[int]bool, tol float64, maxIter int) (dist []float64, escapeRate float64, err error) {
	if tol <= 0 {
		tol = 1e-13
	}
	if maxIter <= 0 {
		maxIter = 1_000_000
	}
	n := c.Size()
	states := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if transient[i] {
			states = append(states, i)
		}
	}
	if len(states) == 0 {
		return nil, 0, fmt.Errorf("markov: quasi-stationary needs a non-empty transient set")
	}

	// Power iteration on v ← v·Q with per-step mass renormalization; the
	// lost mass fraction converges to the escape rate 1-λ.
	v := make([]float64, len(states))
	for i := range v {
		v[i] = 1 / float64(len(states))
	}
	next := make([]float64, len(states))
	prevEscape := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		for j := range next {
			next[j] = 0
		}
		for si, i := range states {
			mass := v[si]
			//bitlint:floatexact sparse skip; only a bit-exact zero carries no mass to spread
			if mass == 0 {
				continue
			}
			row := c.p[i]
			for sj, j := range states {
				next[sj] += mass * row[j]
			}
		}
		kept := 0.0
		for _, m := range next {
			kept += m
		}
		if kept <= 0 {
			return nil, 0, fmt.Errorf("markov: transient set loses all mass in one step")
		}
		escape := 1 - kept
		inv := 1 / kept
		diff := 0.0
		for j := range next {
			next[j] *= inv
			diff += math.Abs(next[j] - v[j])
		}
		copy(v, next)
		if diff/2 < tol && math.Abs(escape-prevEscape) < tol*math.Max(1, escape) {
			out := make([]float64, n)
			for si, i := range states {
				out[i] = v[si]
			}
			return out, escape, nil
		}
		prevEscape = escape
	}
	return nil, 0, fmt.Errorf("markov: quasi-stationary iteration did not converge in %d steps", maxIter)
}
