package markov

import (
	"errors"
	"math"
	"testing"
)

func simpleWalk(n int) *Chain {
	// Symmetric ±1 random walk on 0..n with absorbing endpoints.
	c, err := New(n+1, func(i int) []float64 {
		row := make([]float64, n+1)
		if i == 0 || i == n {
			row[i] = 1
			return row
		}
		row[i-1], row[i+1] = 0.5, 0.5
		return row
	})
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	t.Run("bad size", func(t *testing.T) {
		if _, err := New(0, nil); err == nil {
			t.Error("size 0 accepted")
		}
	})
	t.Run("bad row length", func(t *testing.T) {
		_, err := New(2, func(int) []float64 { return []float64{1} })
		if err == nil {
			t.Error("short row accepted")
		}
	})
	t.Run("not stochastic", func(t *testing.T) {
		_, err := New(2, func(int) []float64 { return []float64{0.5, 0.4} })
		if !errors.Is(err, ErrNotStochastic) {
			t.Errorf("error = %v, want ErrNotStochastic", err)
		}
	})
	t.Run("negative entry", func(t *testing.T) {
		_, err := New(2, func(int) []float64 { return []float64{1.5, -0.5} })
		if err == nil {
			t.Error("negative entry accepted")
		}
	})
}

func TestStepEvolveTwoState(t *testing.T) {
	// p(0->1) = 0.3, p(1->0) = 0.2: stationary distribution (0.4, 0.6).
	c, err := New(2, func(i int) []float64 {
		if i == 0 {
			return []float64{0.7, 0.3}
		}
		return []float64{0.2, 0.8}
	})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Evolve(0, 200)
	if math.Abs(d[0]-0.4) > 1e-9 || math.Abs(d[1]-0.6) > 1e-9 {
		t.Errorf("long-run distribution = %v, want [0.4 0.6]", d)
	}
	one := c.Step([]float64{1, 0})
	if math.Abs(one[1]-0.3) > 1e-12 {
		t.Errorf("one step = %v", one)
	}
}

func TestExpectedHittingTimesGamblersRuin(t *testing.T) {
	// For the symmetric walk absorbed at {0, n}: E_x[T] = x(n-x).
	const n = 20
	c := simpleWalk(n)
	h, err := c.ExpectedHittingTimes(map[int]bool{0: true, n: true})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x <= n; x++ {
		want := float64(x * (n - x))
		if math.Abs(h[x]-want) > 1e-6 {
			t.Errorf("h[%d] = %v, want %v", x, h[x], want)
		}
	}
}

func TestExpectedHittingTimesUnreachable(t *testing.T) {
	// Two disconnected absorbing states: from state 0 the target {2} is
	// unreachable.
	c, err := New(3, func(i int) []float64 {
		row := make([]float64, 3)
		row[i] = 1
		return row
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.ExpectedHittingTimes(map[int]bool{2: true})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(h[0], 1) || !math.IsInf(h[1], 1) {
		t.Errorf("unreachable states should be +Inf: %v", h)
	}
	if h[2] != 0 {
		t.Errorf("target state h = %v", h[2])
	}
}

func TestAbsorptionProbabilitiesGamblersRuin(t *testing.T) {
	// P(hit n before 0 | start x) = x/n for the symmetric walk.
	const n = 16
	c := simpleWalk(n)
	q, err := c.AbsorptionProbabilities(map[int]bool{n: true}, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x <= n; x++ {
		want := float64(x) / n
		if math.Abs(q[x]-want) > 1e-9 {
			t.Errorf("q[%d] = %v, want %v", x, q[x], want)
		}
	}
}

func TestBirthDeathValidation(t *testing.T) {
	tests := []struct {
		name     string
		up, down []float64
	}{
		{"length mismatch", []float64{0.5, 0}, []float64{0, 0.5, 0}},
		{"empty", nil, nil},
		{"top can move up", []float64{0.5, 0.5}, []float64{0, 0.5}},
		{"bottom can move down", []float64{0.5, 0}, []float64{0.5, 0.5}},
		{"rates exceed 1", []float64{0.6, 0.6, 0}, []float64{0, 0.5, 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewBirthDeath(tt.up, tt.down); err == nil {
				t.Error("invalid chain accepted")
			}
		})
	}
}

func TestBirthDeathPureBirth(t *testing.T) {
	// up = 0.25 everywhere, no deaths: E[a→b] = 4(b-a).
	n := 10
	up := make([]float64, n+1)
	down := make([]float64, n+1)
	for i := 0; i < n; i++ {
		up[i] = 0.25
	}
	bd, err := NewBirthDeath(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if got := bd.ExpectedTimeUp(2, 7); math.Abs(got-20) > 1e-12 {
		t.Errorf("ExpectedTimeUp(2,7) = %v, want 20", got)
	}
	if got := bd.ExpectedTimeUp(3, 3); got != 0 {
		t.Errorf("ExpectedTimeUp(3,3) = %v, want 0", got)
	}
}

func TestBirthDeathBlockedIsInf(t *testing.T) {
	// up[2] = 0 blocks upward passage through level 2.
	up := []float64{0.5, 0.5, 0, 0.5, 0}
	down := []float64{0, 0.25, 0.25, 0.25, 0.25}
	bd, err := NewBirthDeath(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if got := bd.ExpectedTimeUp(0, 4); !math.IsInf(got, 1) {
		t.Errorf("blocked passage = %v, want +Inf", got)
	}
	// From 3, the chain may fall to 2 and never climb back: reaching 4 is
	// not almost-sure, so the expected hitting time is +Inf as well.
	if got := bd.ExpectedTimeUp(3, 4); !math.IsInf(got, 1) {
		t.Errorf("ExpectedTimeUp(3,4) = %v, want +Inf (escape below the block)", got)
	}
}

func TestBirthDeathBlockedBelowButUnreachable(t *testing.T) {
	// up[0] = 0, but down[1] = 0 too: from state 1 the block below is
	// unreachable, so times are finite (this exercises the 0·Inf guard).
	up := []float64{0, 0.5, 0.5, 0}
	down := []float64{0, 0, 0.25, 0.25}
	bd, err := NewBirthDeath(up, down)
	if err != nil {
		t.Fatal(err)
	}
	// e[1] = 1/0.5 = 2; e[2] = (1 + 0.25·2)/0.5 = 3; total 5.
	if got := bd.ExpectedTimeUp(1, 3); math.Abs(got-5) > 1e-12 {
		t.Errorf("ExpectedTimeUp(1,3) = %v, want 5", got)
	}
}

func TestBirthDeathMatchesDense(t *testing.T) {
	// Random-ish asymmetric chain: closed forms vs dense linear solve.
	n := 12
	up := make([]float64, n+1)
	down := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		if i < n {
			up[i] = 0.1 + 0.4*float64(i%3)/2
		}
		if i > 0 {
			down[i] = 0.05 + 0.3*float64((i+1)%4)/3
		}
	}
	bd, err := NewBirthDeath(up, down)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := bd.Dense()
	if err != nil {
		t.Fatal(err)
	}

	hUp, err := dense.ExpectedHittingTimes(map[int]bool{n: true})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < n; a++ {
		want := hUp[a]
		if got := bd.ExpectedTimeUp(a, n); math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("ExpectedTimeUp(%d,%d) = %v, dense says %v", a, n, got, want)
		}
	}

	hDown, err := dense.ExpectedHittingTimes(map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= n; a++ {
		want := hDown[a]
		if got := bd.ExpectedTimeDown(a, 0); math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("ExpectedTimeDown(%d,0) = %v, dense says %v", a, want, got)
		}
	}
}

func TestBirthDeathPanicsOnBadRange(t *testing.T) {
	bd, err := NewBirthDeath([]float64{0.5, 0}, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range query did not panic")
		}
	}()
	bd.ExpectedTimeUp(0, 5)
}

func TestDoobIdentity(t *testing.T) {
	// For a martingale oracle (expNext(x) = x) with shift 1: A_t = -t and
	// M_t = X_t.
	xs := []int64{10, 12, 9, 9, 15}
	d := Decompose(xs, 1, func(x int64) float64 { return float64(x) })
	for k := range xs {
		if want := float64(xs[k]) - float64(k); math.Abs(d.Y[k]-want) > 1e-12 {
			t.Errorf("Y[%d] = %v, want %v", k, d.Y[k], want)
		}
		if math.Abs(d.A[k]-(-float64(k))) > 1e-12 {
			t.Errorf("A[%d] = %v, want %v", k, d.A[k], -float64(k))
		}
		if math.Abs(d.M[k]-float64(xs[k])) > 1e-12 {
			t.Errorf("M[%d] = %v, want %v", k, d.M[k], float64(xs[k]))
		}
		if math.Abs(d.Y[k]-(d.M[k]+d.A[k])) > 1e-12 {
			t.Errorf("Y != M + A at %d", k)
		}
	}
}

func TestDoobDiagnostics(t *testing.T) {
	xs := []int64{0, 5, 3, 8}
	d := Decompose(xs, 0, func(x int64) float64 { return float64(x) })
	// Martingale part equals X itself: steps 5, -2, 5 → max 5.
	if got := d.MaxMartingaleStep(); got != 5 {
		t.Errorf("MaxMartingaleStep = %v, want 5", got)
	}
	if got := d.MaxExcursion(); got != 8 {
		t.Errorf("MaxExcursion = %v, want 8", got)
	}
	if !d.DominanceHolds(1e-9) {
		t.Error("M = Y must dominate itself")
	}
	// Negative-drift oracle inflates A downward, so M > Y strictly after 0.
	d2 := Decompose(xs, 0, func(x int64) float64 { return float64(x) - 1 })
	if !d2.DominanceHolds(1e-9) {
		t.Error("supermartingale dominance violated")
	}
	empty := Decompose(nil, 1, nil)
	if len(empty.Y) != 0 || empty.MaxMartingaleStep() != 0 {
		t.Error("empty trajectory mishandled")
	}
}
