package markov

import (
	"fmt"
	"math"

	"bitspread/internal/dist"
	"bitspread/internal/protocol"
)

// maxExactStates caps the population size for exact dense chains; beyond
// it the O(n³) row construction and solves stop being laptop-friendly.
const maxExactStates = 2048

// ParallelChain builds the exact transition chain of the parallel-setting
// bit-dissemination process for rule r, population n and correct opinion z.
// State x ∈ {0..n} is the number of agents with opinion 1 (the source
// included); infeasible states (x < z or x > n-1+z) are made absorbing so
// the chain is well-formed everywhere.
//
// The row out of x is the exact distribution of
// z + Binomial(m₁, P₁(x/n)) + Binomial(m₀, P₀(x/n)) computed by convolving
// the two binomial pmfs. Construction is O(n³) overall and intended for
// n ≤ a few hundred; it returns an error for n > 2048.
func ParallelChain(r *protocol.Rule, n int64, z int) (*Chain, error) {
	if n < 2 {
		return nil, fmt.Errorf("markov: population %d too small", n)
	}
	if n > maxExactStates {
		return nil, fmt.Errorf("markov: population %d exceeds exact-chain cap %d", n, maxExactStates)
	}
	if z != 0 && z != 1 {
		return nil, fmt.Errorf("markov: correct opinion %d must be 0 or 1", z)
	}
	size := int(n) + 1
	lo, hi := z, int(n)-1+z
	return New(size, func(x int) []float64 {
		row := make([]float64, size)
		if x < lo || x > hi {
			row[x] = 1 // infeasible: absorb
			return row
		}
		p := float64(x) / float64(n)
		p1 := r.AdoptProb(1, p)
		p0 := r.AdoptProb(0, p)
		m1 := x - z
		m0 := int(n) - x - (1 - z)
		b1 := binomialVector(m1, p1)
		b0 := binomialVector(m0, p0)
		// row[z + j1 + j0] += b1[j1]·b0[j0].
		for j1, q1 := range b1 {
			//bitlint:floatexact sparse skip; a bit-exact zero pmf entry contributes nothing
			if q1 == 0 {
				continue
			}
			for j0, q0 := range b0 {
				row[z+j1+j0] += q1 * q0
			}
		}
		// The convolution of two recurrence-computed pmfs accumulates
		// O(n·ε) round-off; renormalize so the row is exactly stochastic.
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum > 0 {
			inv := 1 / sum
			for j := range row {
				row[j] *= inv
			}
		}
		return row
	})
}

// binomialVector returns the full pmf of Binomial(m, p) via a
// multiplicative recurrence spreading outward from the mode, which keeps
// the evaluation underflow-safe for any p (terms only shrink moving away
// from the mode; far tails may flush to zero, which is harmless).
func binomialVector(m int, p float64) []float64 {
	v := make([]float64, m+1)
	switch {
	case p <= 0:
		v[0] = 1
		return v
	case p >= 1:
		v[m] = 1
		return v
	}
	mode := int(float64(m+1) * p)
	if mode > m {
		mode = m
	}
	logPmf := dist.LogChoose(int64(m), int64(mode)) +
		float64(mode)*math.Log(p) + float64(m-mode)*math.Log1p(-p)
	v[mode] = math.Exp(logPmf)
	ratio := p / (1 - p)
	cur := v[mode]
	for k := mode; k < m && cur > 0; k++ {
		cur *= float64(m-k) / float64(k+1) * ratio
		v[k+1] = cur
	}
	cur = v[mode]
	for k := mode; k > 0 && cur > 0; k-- {
		cur *= float64(k) / float64(m-k+1) / ratio
		v[k-1] = cur
	}
	return v
}

// SequentialBirthDeath builds the exact birth–death chain of the
// sequential setting: from count x, one uniformly random non-source agent
// activates, so
//
//	up[x]   = (m₀/(n-1))·P₀(x/n),
//	down[x] = (m₁/(n-1))·(1-P₁(x/n)).
//
// Infeasible states get zero rates. Unlike ParallelChain this is O(n) to
// build and its hitting times have closed forms, so it scales to millions
// of states.
func SequentialBirthDeath(r *protocol.Rule, n int64, z int) (*BirthDeath, error) {
	if n < 2 {
		return nil, fmt.Errorf("markov: population %d too small", n)
	}
	if z != 0 && z != 1 {
		return nil, fmt.Errorf("markov: correct opinion %d must be 0 or 1", z)
	}
	size := int(n) + 1
	up := make([]float64, size)
	down := make([]float64, size)
	lo, hi := z, int(n)-1+z
	nonSource := float64(n - 1)
	for x := lo; x <= hi; x++ {
		p := float64(x) / float64(n)
		m1 := float64(x - z)
		m0 := float64(int(n) - x - (1 - z))
		if x < size-1 {
			up[x] = (m0 / nonSource) * r.AdoptProb(0, p)
		}
		if x > 0 {
			down[x] = (m1 / nonSource) * (1 - r.AdoptProb(1, p))
		}
	}
	return NewBirthDeath(up, down)
}
