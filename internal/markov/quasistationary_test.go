package markov

import (
	"math"
	"testing"

	"bitspread/internal/protocol"
)

func TestQuasiStationaryTwoState(t *testing.T) {
	// Transient state 0 escapes to the absorbing state 1 with rate 0.25:
	// the QSD is a point mass and the escape rate is exactly 0.25.
	c, err := New(2, func(i int) []float64 {
		if i == 0 {
			return []float64{0.75, 0.25}
		}
		return []float64{0, 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	dist, escape, err := c.QuasiStationary(map[int]bool{0: true}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(escape-0.25) > 1e-10 {
		t.Errorf("escape rate = %v, want 0.25", escape)
	}
	if math.Abs(dist[0]-1) > 1e-10 || dist[1] != 0 {
		t.Errorf("QSD = %v", dist)
	}
}

func TestQuasiStationaryValidation(t *testing.T) {
	c := simpleWalk(4)
	if _, _, err := c.QuasiStationary(map[int]bool{}, 0, 0); err == nil {
		t.Error("empty transient set accepted")
	}
	// A set that dumps all mass immediately.
	c2, err := New(2, func(i int) []float64 {
		if i == 0 {
			return []float64{0, 1}
		}
		return []float64{0, 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.QuasiStationary(map[int]bool{0: true}, 0, 0); err == nil {
		t.Error("fully-escaping set accepted")
	}
}

// TestQuasiStationaryMatchesHittingTime cross-validates the two exact
// numerical paths on the Minority trap (the X6 object): the expected
// absorption time from the QSD equals 1/escape-rate, and must agree with
// the hitting-time linear solve averaged over the QSD.
func TestQuasiStationaryMatchesHittingTime(t *testing.T) {
	const n = 32
	chain, err := ParallelChain(protocol.Minority(3), n, 1)
	if err != nil {
		t.Fatal(err)
	}
	transient := make(map[int]bool, n)
	for x := 1; x < n; x++ {
		transient[x] = true
	}
	dist, escape, err := chain.QuasiStationary(transient, 1e-14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if escape <= 0 || escape >= 1 {
		t.Fatalf("escape rate = %v", escape)
	}
	qsdTime := 1 / escape

	h, err := chain.ExpectedHittingTimes(map[int]bool{n: true})
	if err != nil {
		t.Fatal(err)
	}
	avg := 0.0
	for x, m := range dist {
		if m > 0 {
			avg += m * h[x]
		}
	}
	// From quasi-stationarity absorption is geometric: E[T] = 1/(1-λ).
	if rel := math.Abs(qsdTime-avg) / avg; rel > 0.01 {
		t.Errorf("QSD time 1/(1-λ) = %v vs hitting-time average %v (rel err %v)", qsdTime, avg, rel)
	}
	// The QSD concentrates near the interior attractor n/2, not near the
	// consensus.
	peak, peakMass := 0, 0.0
	for x, m := range dist {
		if m > peakMass {
			peak, peakMass = x, m
		}
	}
	if peak < n/4 || peak > 3*n/4 {
		t.Errorf("QSD peak at %d, expected near the n/2 attractor", peak)
	}
}
