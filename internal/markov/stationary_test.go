package markov

import (
	"math"
	"testing"

	"bitspread/internal/protocol"
)

func TestStationaryTwoState(t *testing.T) {
	// p(0→1)=0.3, p(1→0)=0.2: stationary (0.4, 0.6).
	c, err := New(2, func(i int) []float64 {
		if i == 0 {
			return []float64{0.7, 0.3}
		}
		return []float64{0.2, 0.8}
	})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary(1e-13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.4) > 1e-9 || math.Abs(pi[1]-0.6) > 1e-9 {
		t.Errorf("stationary = %v", pi)
	}
	// Stationarity: one more step is a fixed point.
	next := c.Step(pi)
	if TotalVariation(pi, next) > 1e-9 {
		t.Error("returned distribution is not stationary")
	}
}

func TestStationaryIterationBudget(t *testing.T) {
	// An asymmetric nearly-frozen chain (stationary law (0.75, 0.25))
	// cannot get from uniform to stationarity in 3 steps.
	eps := 1e-9
	c, err := New(2, func(i int) []float64 {
		if i == 0 {
			return []float64{1 - eps, eps}
		}
		return []float64{3 * eps, 1 - 3*eps}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stationary(1e-15, 3); err == nil {
		t.Error("expected an iteration-budget error")
	}
}

func TestTotalVariation(t *testing.T) {
	if got := TotalVariation([]float64{1, 0}, []float64{0, 1}); got != 1 {
		t.Errorf("TV of disjoint = %v, want 1", got)
	}
	if got := TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("TV of equal = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	TotalVariation([]float64{1}, []float64{0.5, 0.5})
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{0, 0.5, 0.5}); got != 1.5 {
		t.Errorf("Mean = %v", got)
	}
}

// TestConflictChainZealotMean validates X7 exactly: the stationary mean
// fraction of the Voter with (s1, s0) zealots is s1/(s1+s0).
func TestConflictChainZealotMean(t *testing.T) {
	cases := []struct{ s1, s0 int64 }{{1, 1}, {3, 1}, {2, 6}}
	const n = 80
	for _, c := range cases {
		chain, err := ConflictChain(protocol.Voter(1), n, c.s1, c.s0)
		if err != nil {
			t.Fatal(err)
		}
		// Start inside the feasible band: the out-of-band states are
		// absorbing and would trap uniform-start mass.
		pi, err := chain.StationaryFrom(n/2, 1e-12, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		mean := Mean(pi) / n
		want := float64(c.s1) / float64(c.s1+c.s0)
		if math.Abs(mean-want) > 1e-6 {
			t.Errorf("(s1=%d,s0=%d): stationary mean fraction = %v, want %v", c.s1, c.s0, mean, want)
		}
	}
}

func TestConflictChainRowsFeasible(t *testing.T) {
	const n, s1, s0 = 40, 2, 3
	chain, err := ConflictChain(protocol.Minority(3), n, s1, s0)
	if err != nil {
		t.Fatal(err)
	}
	for x := s1; x <= n-s0; x++ {
		for y := 0; y <= n; y++ {
			pr := chain.Prob(int(x), y)
			if pr > 0 && (y < s1 || y > n-s0) {
				t.Fatalf("feasible state %d leaks to infeasible %d with prob %v", x, y, pr)
			}
		}
	}
}

func TestConflictChainValidation(t *testing.T) {
	if _, err := ConflictChain(protocol.Voter(1), 10, 6, 5); err == nil {
		t.Error("sources exceeding population accepted")
	}
	if _, err := ConflictChain(protocol.Voter(1), 100_000, 1, 1); err == nil {
		t.Error("huge population accepted for the exact chain")
	}
	if _, err := ConflictChain(protocol.Voter(1), 10, -1, 1); err == nil {
		t.Error("negative source count accepted")
	}
}

func TestStationaryFromValidation(t *testing.T) {
	c := simpleWalk(4)
	if _, err := c.StationaryFrom(-1, 0, 0); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := c.StationaryFrom(99, 0, 0); err == nil {
		t.Error("out-of-range start accepted")
	}
}
