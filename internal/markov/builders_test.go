package markov

import (
	"math"
	"testing"

	"bitspread/internal/dist"
	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestParallelChainValidation(t *testing.T) {
	if _, err := ParallelChain(protocol.Voter(1), 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ParallelChain(protocol.Voter(1), 10_000, 1); err == nil {
		t.Error("huge n accepted for exact chain")
	}
	if _, err := ParallelChain(protocol.Voter(1), 10, 2); err == nil {
		t.Error("z=2 accepted")
	}
}

func TestParallelChainRowMean(t *testing.T) {
	// Row expectation must equal z + m₁P₁ + m₀P₀ (the Prop 5 building
	// block) for every feasible state.
	const n, z = 40, 1
	r := protocol.Minority(3)
	c, err := ParallelChain(r, n, z)
	if err != nil {
		t.Fatal(err)
	}
	for x := z; x <= n-1+z; x++ {
		p := float64(x) / n
		want := float64(z) + float64(x-z)*r.AdoptProb(1, p) + float64(n-x-(1-z))*r.AdoptProb(0, p)
		mean := 0.0
		for y := 0; y <= n; y++ {
			mean += float64(y) * c.Prob(x, y)
		}
		if math.Abs(mean-want) > 1e-8 {
			t.Errorf("row %d mean = %v, want %v", x, mean, want)
		}
	}
}

func TestParallelChainConsensusAbsorbing(t *testing.T) {
	const n = 30
	for _, z := range []int{0, 1} {
		c, err := ParallelChain(protocol.Voter(2), n, z)
		if err != nil {
			t.Fatal(err)
		}
		target := z * n
		if got := c.Prob(target, target); math.Abs(got-1) > 1e-12 {
			t.Errorf("z=%d consensus self-loop = %v", z, got)
		}
	}
}

// TestParallelChainVsSimulation cross-validates the exact expected hitting
// time against the Monte-Carlo mean of the count engine.
func TestParallelChainVsSimulation(t *testing.T) {
	const (
		n    = 24
		z    = 1
		x0   = 12
		reps = 3000
	)
	r := protocol.Voter(1)
	c, err := ParallelChain(r, n, z)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.ExpectedHittingTimes(map[int]bool{n: true})
	if err != nil {
		t.Fatal(err)
	}
	exact := h[x0]

	g := rng.New(77)
	sum := 0.0
	for i := 0; i < reps; i++ {
		res, err := engine.RunParallel(engine.Config{
			N: n, Rule: r, Z: z, X0: x0,
		}, g.Split())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("run did not converge")
		}
		sum += float64(res.Rounds)
	}
	mc := sum / reps
	if math.Abs(mc-exact)/exact > 0.1 {
		t.Errorf("Monte-Carlo mean %v vs exact %v (>10%% off)", mc, exact)
	}
}

func TestParallelChainVoterUpperBoundShape(t *testing.T) {
	// Theorem 2 finite-n sanity: the exact expected convergence time of the
	// Voter from the worst case is below 4·n·ln(n) for moderate n.
	for _, n := range []int64{16, 32, 64} {
		c, err := ParallelChain(protocol.Voter(1), n, 1)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.ExpectedHittingTimes(map[int]bool{int(n): true})
		if err != nil {
			t.Fatal(err)
		}
		bound := 4 * float64(n) * math.Log(float64(n))
		if h[1] > bound {
			t.Errorf("n=%d: exact E[τ] = %v exceeds 4n·ln n = %v", n, h[1], bound)
		}
		if h[1] < float64(n)/4 {
			t.Errorf("n=%d: exact E[τ] = %v suspiciously small", n, h[1])
		}
	}
}

func TestSequentialBirthDeathMatchesDense(t *testing.T) {
	const n, z = 20, 1
	r := protocol.Voter(1)
	bd, err := SequentialBirthDeath(r, n, z)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := bd.Dense()
	if err != nil {
		t.Fatal(err)
	}
	h, err := dense.ExpectedHittingTimes(map[int]bool{n: true})
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a < n; a++ {
		want := h[a]
		if got := bd.ExpectedTimeUp(a, n); math.Abs(got-want) > 1e-6*want {
			t.Errorf("ExpectedTimeUp(%d) = %v, dense %v", a, got, want)
		}
	}
}

func TestSequentialBirthDeathVsSimulation(t *testing.T) {
	const (
		n    = 16
		z    = 1
		x0   = 1
		reps = 1500
	)
	r := protocol.Voter(1)
	bd, err := SequentialBirthDeath(r, n, z)
	if err != nil {
		t.Fatal(err)
	}
	exact := bd.ExpectedTimeUp(x0, n) // in activations

	g := rng.New(88)
	sum := 0.0
	for i := 0; i < reps; i++ {
		res, err := engine.RunSequential(engine.Config{
			N: n, Rule: r, Z: z, X0: x0,
		}, g.Split())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("sequential run did not converge")
		}
		sum += float64(res.Activations)
	}
	mc := sum / reps
	if math.Abs(mc-exact)/exact > 0.12 {
		t.Errorf("Monte-Carlo activations %v vs exact %v", mc, exact)
	}
}

func TestSequentialLowerBoundShape(t *testing.T) {
	// [14]: in the sequential setting every protocol needs Ω(n) parallel
	// rounds. Check the exact expected time for the Voter from the
	// balanced start grows at least linearly in n (in parallel rounds).
	prev := 0.0
	for _, n := range []int64{16, 32, 64, 128} {
		bd, err := SequentialBirthDeath(protocol.Voter(1), n, 1)
		if err != nil {
			t.Fatal(err)
		}
		rounds := bd.ExpectedTimeUp(int(n)/2, int(n)) / float64(n)
		if rounds < float64(n)/8 {
			t.Errorf("n=%d: sequential E[τ] = %v parallel rounds, want Ω(n)", n, rounds)
		}
		if rounds <= prev {
			t.Errorf("n=%d: expected time not increasing (%v after %v)", n, rounds, prev)
		}
		prev = rounds
	}
}

// TestCountEngineDistributionChiSquare is the strongest engine validation:
// the one-round count distribution sampled from engine.StepCount must
// match the exact ParallelChain row under a pooled Pearson χ² test.
func TestCountEngineDistributionChiSquare(t *testing.T) {
	const (
		n     = 40
		x0    = 15
		z     = 1
		draws = 20000
	)
	r := protocol.Minority(3)
	chain, err := ParallelChain(r, n, z)
	if err != nil {
		t.Fatal(err)
	}
	expected := make([]float64, n+1)
	for y := 0; y <= n; y++ {
		expected[y] = chain.Prob(x0, y) * draws
	}
	observed := make([]int64, n+1)
	g := rng.New(606)
	for i := 0; i < draws; i++ {
		observed[engine.StepCount(r, n, z, x0, g)]++
	}
	stat, dof, err := dist.ChiSquareStat(observed, expected, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.ChiSquareTail(stat, dof)
	if p < 0.001 {
		t.Errorf("count engine vs exact row: χ²=%.2f (dof %d), p=%.2g — distribution mismatch", stat, dof, p)
	}
}
