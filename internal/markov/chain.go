// Package markov provides the finite Markov-chain machinery behind the
// paper's analysis: dense chains with exact hitting-time and absorption
// computations (used to validate the simulators on small populations),
// closed-form birth–death chains (the sequential setting's structure, per
// [14]), and the Doob decomposition Y = M + A with the martingale
// diagnostics that drive Theorem 6.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotStochastic is returned when a transition row does not sum to 1.
var ErrNotStochastic = errors.New("markov: transition row does not sum to 1")

// rowSumTol is the tolerance on row sums at construction.
const rowSumTol = 1e-9

// Chain is a finite Markov chain with a dense transition matrix over
// states 0..Size()-1. Construct with New; the zero value is empty.
type Chain struct {
	p [][]float64
}

// New builds a chain from a row constructor: row(i) must return the
// transition distribution out of state i, of length size. Rows are copied
// and validated.
func New(size int, row func(i int) []float64) (*Chain, error) {
	if size <= 0 {
		return nil, fmt.Errorf("markov: size %d must be positive", size)
	}
	c := &Chain{p: make([][]float64, size)}
	for i := 0; i < size; i++ {
		r := row(i)
		if len(r) != size {
			return nil, fmt.Errorf("markov: row %d has length %d, want %d", i, len(r), size)
		}
		sum := 0.0
		for j, v := range r {
			if v < -rowSumTol || math.IsNaN(v) {
				return nil, fmt.Errorf("markov: row %d entry %d is %v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > rowSumTol {
			return nil, fmt.Errorf("%w (row %d sums to %v)", ErrNotStochastic, i, sum)
		}
		c.p[i] = append([]float64(nil), r...)
	}
	return c, nil
}

// Size returns the number of states.
func (c *Chain) Size() int { return len(c.p) }

// Prob returns the one-step transition probability from i to j.
func (c *Chain) Prob(i, j int) float64 { return c.p[i][j] }

// Step returns the distribution after one step from the given distribution
// (a fresh slice).
func (c *Chain) Step(dist []float64) []float64 {
	n := c.Size()
	out := make([]float64, n)
	for i, mass := range dist {
		//bitlint:floatexact sparse skip; only a bit-exact zero carries no mass to spread
		if mass == 0 {
			continue
		}
		row := c.p[i]
		for j, pij := range row {
			out[j] += mass * pij
		}
	}
	return out
}

// Evolve returns the distribution after t steps starting from state start.
func (c *Chain) Evolve(start, t int) []float64 {
	dist := make([]float64, c.Size())
	dist[start] = 1
	for s := 0; s < t; s++ {
		dist = c.Step(dist)
	}
	return dist
}

// ExpectedHittingTimes returns h[i] = expected number of steps to reach
// any state in targets starting from i (h = 0 on targets). It solves the
// linear system (I - Q)h = 1 on the non-target states by dense Gaussian
// elimination with partial pivoting — O(m³) in the number m of non-target
// states, so intended for small chains (m up to a few hundred).
//
// States that cannot reach the target set yield +Inf.
func (c *Chain) ExpectedHittingTimes(targets map[int]bool) ([]float64, error) {
	n := c.Size()
	// Index the transient (non-target) states.
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !targets[i] {
			idx = append(idx, i)
		}
	}
	m := len(idx)
	h := make([]float64, n)
	if m == 0 {
		return h, nil
	}

	// Identify states that can reach the target set at all (backward BFS
	// over support edges); others get +Inf and are excluded.
	reach := c.canReach(targets)

	// Assemble A = I - Q and b = 1 over reachable transient states.
	sys := make([]int, 0, m)
	for _, i := range idx {
		if reach[i] {
			sys = append(sys, i)
		} else {
			h[i] = math.Inf(1)
		}
	}
	k := len(sys)
	if k == 0 {
		return h, nil
	}
	a := make([][]float64, k)
	b := make([]float64, k)
	for r, i := range sys {
		a[r] = make([]float64, k)
		for cc, j := range sys {
			v := -c.p[i][j]
			if i == j {
				v += 1
			}
			a[r][cc] = v
		}
		b[r] = 1
	}
	x, err := solveDense(a, b)
	if err != nil {
		return nil, err
	}
	for r, i := range sys {
		h[i] = x[r]
	}
	return h, nil
}

// AbsorptionProbabilities returns q[i] = probability of eventually hitting
// a state in target before hitting any state in avoid, starting from i.
// States in target get 1, states in avoid get 0.
func (c *Chain) AbsorptionProbabilities(target, avoid map[int]bool) ([]float64, error) {
	n := c.Size()
	q := make([]float64, n)
	sys := make([]int, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case target[i]:
			q[i] = 1
		case avoid[i]:
			q[i] = 0
		default:
			sys = append(sys, i)
		}
	}
	k := len(sys)
	if k == 0 {
		return q, nil
	}
	a := make([][]float64, k)
	b := make([]float64, k)
	for r, i := range sys {
		a[r] = make([]float64, k)
		for cc, j := range sys {
			v := -c.p[i][j]
			if i == j {
				v += 1
			}
			a[r][cc] = v
		}
		// Accumulate in index order, not map order: float addition is not
		// associative, so ranging the target set directly would make the
		// solved probabilities differ in the last ulp between runs.
		for j := 0; j < n; j++ {
			if target[j] {
				b[r] += c.p[i][j]
			}
		}
	}
	x, err := solveDense(a, b)
	if err != nil {
		return nil, err
	}
	for r, i := range sys {
		q[i] = clamp01(x[r])
	}
	return q, nil
}

// canReach marks states from which the target set is reachable.
func (c *Chain) canReach(targets map[int]bool) []bool {
	n := c.Size()
	reach := make([]bool, n)
	queue := make([]int, 0, n)
	// Seed the queue in index order so the BFS visit sequence is a pure
	// function of the chain, not of map iteration order.
	for t := 0; t < n; t++ {
		if targets[t] {
			reach[t] = true
			queue = append(queue, t)
		}
	}
	// Backward edges: i -> t whenever p[i][t] > 0.
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for i := 0; i < n; i++ {
			if !reach[i] && c.p[i][t] > 0 {
				reach[i] = true
				queue = append(queue, i)
			}
		}
	}
	return reach
}

// solveDense solves a·x = b by Gaussian elimination with partial pivoting,
// destroying a and b.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		//bitlint:floatexact pivot magnitude of exactly zero is the definition of a singular column
		if best == 0 {
			return nil, fmt.Errorf("markov: singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			//bitlint:floatexact sparse skip; a bit-exact zero multiplier eliminates nothing
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for cc := col + 1; cc < n; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for cc := r + 1; cc < n; cc++ {
			v -= a[r][cc] * x[cc]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
