package markov

import (
	"fmt"
	"math"

	"bitspread/internal/protocol"
)

// Stationary returns a stationary distribution of the chain by power
// iteration from the uniform distribution, stopping when successive
// iterates are within tol in total variation (or after maxIter steps).
// For chains with several closed classes it returns the limit reached
// from uniform, which mixes the classes' stationary laws; use
// StationaryFrom to target one class (e.g. the feasible band of a
// ConflictChain, whose out-of-band states are absorbing by construction).
func (c *Chain) Stationary(tol float64, maxIter int) ([]float64, error) {
	dist := make([]float64, c.Size())
	for i := range dist {
		dist[i] = 1 / float64(c.Size())
	}
	return c.stationaryFrom(dist, tol, maxIter)
}

// StationaryFrom runs the power iteration from a point mass at start.
func (c *Chain) StationaryFrom(start int, tol float64, maxIter int) ([]float64, error) {
	if start < 0 || start >= c.Size() {
		return nil, fmt.Errorf("markov: start state %d outside [0,%d)", start, c.Size())
	}
	dist := make([]float64, c.Size())
	dist[start] = 1
	return c.stationaryFrom(dist, tol, maxIter)
}

func (c *Chain) stationaryFrom(dist []float64, tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100_000
	}
	for iter := 0; iter < maxIter; iter++ {
		next := c.Step(dist)
		if TotalVariation(dist, next) < tol {
			return next, nil
		}
		dist = next
	}
	return nil, fmt.Errorf("markov: power iteration did not reach tv < %v in %d steps", tol, maxIter)
}

// TotalVariation returns the total-variation distance between two
// distributions over the same state space: ½·Σ|a_i - b_i|. It panics on
// length mismatch.
func TotalVariation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("markov: TV distance of lengths %d and %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / 2
}

// Mean returns the expectation Σ i·dist[i] of a distribution over states.
func Mean(dist []float64) float64 {
	m := 0.0
	for i, p := range dist {
		m += float64(i) * p
	}
	return m
}

// ConflictChain builds the exact transition chain of the
// conflicting-sources process (engine.RunConflict's chain): s1 agents
// stubborn on 1, s0 stubborn on 0, everyone else running the rule. The
// state is the one-count in [s1, n-s0]; states outside it absorb. With
// both source counts positive the chain is irreducible on the feasible
// band and has a unique stationary law — the object experiment X7
// samples, computed here exactly for validation.
func ConflictChain(r *protocol.Rule, n, s1, s0 int64) (*Chain, error) {
	if n < 2 || s1 < 0 || s0 < 0 || s1+s0 >= n {
		return nil, fmt.Errorf("markov: invalid conflict parameters n=%d s1=%d s0=%d", n, s1, s0)
	}
	if n > maxExactStates {
		return nil, fmt.Errorf("markov: population %d exceeds exact-chain cap %d", n, maxExactStates)
	}
	size := int(n) + 1
	lo, hi := int(s1), int(n-s0)
	return New(size, func(x int) []float64 {
		row := make([]float64, size)
		if x < lo || x > hi {
			row[x] = 1
			return row
		}
		p := float64(x) / float64(n)
		b1 := binomialVector(x-lo, r.AdoptProb(1, p))
		b0 := binomialVector(hi-x, r.AdoptProb(0, p))
		for j1, q1 := range b1 {
			//bitlint:floatexact sparse skip; a bit-exact zero pmf entry contributes nothing
			if q1 == 0 {
				continue
			}
			for j0, q0 := range b0 {
				row[lo+j1+j0] += q1 * q0
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum > 0 {
			inv := 1 / sum
			for j := range row {
				row[j] *= inv
			}
		}
		return row
	})
}
