package markov

import "math"

// Doob computes the Doob decomposition used in the proof of Theorem 6.
// For a trajectory {X_t} and a drift oracle giving E[X_{t+1} | X_t = x],
// the shifted process Y_t = X_t - t splits uniquely as Y_t = M_t + A_t
// with M a martingale and A predictable:
//
//	A_t = Σ_{k=1}^{t} (E[Y_k | Y_{k-1}] - Y_{k-1}),   A_0 = 0,
//	M_t = Y_0 + Σ_{k=1}^{t} (Y_k - E[Y_k | Y_{k-1}]), M_0 = Y_0.
//
// The decomposition makes the proof's key quantities observable: Claim 7's
// invariant M_t >= Y_t, the martingale corridor of Claim 8, and the
// bounded-increment condition (iii).
type Doob struct {
	// Y[t] = X[t] - t·shift (shift is 1 in the Theorem 6 proof).
	Y []float64
	// M is the martingale part, M[0] = Y[0].
	M []float64
	// A is the predictable part, A[0] = 0; Y = M + A pointwise.
	A []float64
}

// Decompose computes the Doob decomposition of the trajectory xs under the
// drift oracle expNext(x) = E[X_{t+1} | X_t = x], with the linear time
// shift Y_t = X_t - shift·t (Theorem 6 uses shift = 1; pass 0 to decompose
// X itself).
func Decompose(xs []int64, shift float64, expNext func(x int64) float64) *Doob {
	t := len(xs)
	d := &Doob{
		Y: make([]float64, t),
		M: make([]float64, t),
		A: make([]float64, t),
	}
	if t == 0 {
		return d
	}
	d.Y[0] = float64(xs[0])
	d.M[0] = d.Y[0]
	d.A[0] = 0
	for k := 1; k < t; k++ {
		d.Y[k] = float64(xs[k]) - shift*float64(k)
		// E[Y_k | Y_{k-1}] = E[X_k | X_{k-1}] - shift·k.
		ey := expNext(xs[k-1]) - shift*float64(k)
		d.A[k] = d.A[k-1] + (ey - d.Y[k-1])
		d.M[k] = d.M[k-1] + (d.Y[k] - ey)
	}
	return d
}

// MaxMartingaleStep returns the largest |M_{t+1} - M_t| over the
// trajectory — the empirical counterpart of assumption (iii) of Theorem 6.
func (d *Doob) MaxMartingaleStep() float64 {
	maxStep := 0.0
	for k := 1; k < len(d.M); k++ {
		if s := math.Abs(d.M[k] - d.M[k-1]); s > maxStep {
			maxStep = s
		}
	}
	return maxStep
}

// DominanceHolds reports whether M_t >= Y_t - tol for every t — the
// invariant established by Claims 7 and 9 (Y can never jump over M while
// it stays in the working interval).
func (d *Doob) DominanceHolds(tol float64) bool {
	for k := range d.M {
		if d.M[k] < d.Y[k]-tol {
			return false
		}
	}
	return true
}

// MaxExcursion returns the largest |M_t - M_0| over the trajectory — the
// quantity the Azuma–Hoeffding corridor of Claim 8 controls.
func (d *Doob) MaxExcursion() float64 {
	maxEx := 0.0
	for k := range d.M {
		if e := math.Abs(d.M[k] - d.M[0]); e > maxEx {
			maxEx = e
		}
	}
	return maxEx
}
