package markov

import (
	"fmt"
	"math"
)

// BirthDeath is a birth–death chain on states 0..n: from state i the chain
// moves to i+1 with probability Up[i], to i-1 with probability Down[i], and
// stays otherwise. This is exactly the structure of the sequential setting
// for every memory-less protocol (only one agent updates per activation),
// the observation underlying all the lower bounds of [14].
type BirthDeath struct {
	up   []float64
	down []float64
}

// NewBirthDeath builds a chain from the per-state up/down probabilities,
// which must have equal length n+1, satisfy up[i]+down[i] <= 1, and have
// up[n] = 0 and down[0] = 0. Slices are copied.
func NewBirthDeath(up, down []float64) (*BirthDeath, error) {
	if len(up) != len(down) || len(up) == 0 {
		return nil, fmt.Errorf("markov: up/down lengths %d, %d invalid", len(up), len(down))
	}
	n := len(up) - 1
	//bitlint:floatexact boundary rates must be written as literal 0; any other value is a caller bug
	if up[n] != 0 {
		return nil, fmt.Errorf("markov: up[%d] = %v, want 0 at the top state", n, up[n])
	}
	//bitlint:floatexact boundary rates must be written as literal 0; any other value is a caller bug
	if down[0] != 0 {
		return nil, fmt.Errorf("markov: down[0] = %v, want 0 at the bottom state", down[0])
	}
	for i := range up {
		if up[i] < 0 || down[i] < 0 || up[i]+down[i] > 1+rowSumTol {
			return nil, fmt.Errorf("markov: invalid rates at state %d (up=%v, down=%v)", i, up[i], down[i])
		}
	}
	return &BirthDeath{
		up:   append([]float64(nil), up...),
		down: append([]float64(nil), down...),
	}, nil
}

// Size returns the number of states, n+1.
func (bd *BirthDeath) Size() int { return len(bd.up) }

// Up returns the probability of moving from i to i+1.
func (bd *BirthDeath) Up(i int) float64 { return bd.up[i] }

// Down returns the probability of moving from i to i-1.
func (bd *BirthDeath) Down(i int) float64 { return bd.down[i] }

// ExpectedTimeUp returns the expected number of steps to first reach state
// b starting from state a <= b, by the classical one-step recursion for
// birth–death chains:
//
//	E[i→i+1] = (1 + down[i]·E[i-1→i]) / up[i],
//
// summed over i = a..b-1. The result is +Inf if some up[i] = 0 on the way
// (with i > 0 reachable downward mass below it notwithstanding — the chain
// then cannot pass level i upward).
func (bd *BirthDeath) ExpectedTimeUp(a, b int) float64 {
	bd.mustValidRange(a, b)
	if a == b {
		return 0
	}
	// e[i] = expected steps from i to i+1.
	e := make([]float64, b)
	for i := 0; i < b; i++ {
		//bitlint:floatexact an exactly-zero up rate makes the upward passage impossible, not merely slow
		if bd.up[i] == 0 {
			e[i] = math.Inf(1)
			continue
		}
		carried := 0.0
		if i > 0 && bd.down[i] > 0 {
			carried = bd.down[i] * e[i-1] // guarded so 0·Inf never arises
		}
		e[i] = (1 + carried) / bd.up[i]
	}
	total := 0.0
	for i := a; i < b; i++ {
		total += e[i]
	}
	return total
}

// ExpectedTimeDown returns the expected number of steps to first reach
// state b starting from a >= b (the mirror of ExpectedTimeUp).
func (bd *BirthDeath) ExpectedTimeDown(a, b int) float64 {
	bd.mustValidRange(b, a)
	if a == b {
		return 0
	}
	n := bd.Size() - 1
	// d[i] = expected steps from i to i-1, computed from the top down.
	d := make([]float64, n+1)
	for i := n; i > b; i-- {
		//bitlint:floatexact an exactly-zero down rate makes the downward passage impossible, not merely slow
		if bd.down[i] == 0 {
			d[i] = math.Inf(1)
			continue
		}
		carried := 0.0
		if i < n && bd.up[i] > 0 {
			carried = bd.up[i] * d[i+1] // guarded so 0·Inf never arises
		}
		d[i] = (1 + carried) / bd.down[i]
	}
	total := 0.0
	for i := a; i > b; i-- {
		total += d[i]
	}
	return total
}

// Dense converts the birth–death chain to a dense Chain, for cross-checks
// against the generic solvers.
func (bd *BirthDeath) Dense() (*Chain, error) {
	n := bd.Size()
	return New(n, func(i int) []float64 {
		row := make([]float64, n)
		if i+1 < n {
			row[i+1] = bd.up[i]
		}
		if i > 0 {
			row[i-1] = bd.down[i]
		}
		row[i] = 1 - bd.up[i] - bd.down[i]
		return row
	})
}

func (bd *BirthDeath) mustValidRange(lo, hi int) {
	if lo < 0 || hi >= bd.Size() || lo > hi {
		panic(fmt.Sprintf("markov: invalid state range [%d, %d] for size %d", lo, hi, bd.Size()))
	}
}
