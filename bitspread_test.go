package bitspread_test

import (
	"math"
	"testing"

	"bitspread"
)

// TestPublicAPIEndToEnd walks the documented quick-start path through the
// facade: build a rule, run the parallel engine, analyse its bias, and
// cross-check with the exact chain.
func TestPublicAPIEndToEnd(t *testing.T) {
	const n = 256
	cfg := bitspread.Config{
		N:    n,
		Rule: bitspread.Voter(1),
		Z:    1,
		X0:   bitspread.WorstCaseInit(n, 1),
	}
	res, err := bitspread.RunParallel(cfg, bitspread.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalCount != n {
		t.Fatalf("quick start did not converge: %+v", res)
	}

	a := bitspread.AnalyzeBias(bitspread.Minority(3))
	if a.Classify() != bitspread.CaseNegative {
		t.Errorf("Minority(3) case = %v", a.Classify())
	}
	if got := len(a.Roots()); got != 3 {
		t.Errorf("Minority(3) roots = %d, want 3", got)
	}

	chain, err := bitspread.ParallelChain(bitspread.Voter(1), 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := chain.ExpectedHittingTimes(map[int]bool{32: true})
	if err != nil {
		t.Fatal(err)
	}
	if h[1] <= 0 || math.IsInf(h[1], 1) {
		t.Errorf("exact hitting time = %v", h[1])
	}
}

// TestPublicAgentEngines exercises the multi-core agent entry points on
// the facade: the sharded packed engine, the replica batch, and the shard
// bound they share.
func TestPublicAgentEngines(t *testing.T) {
	const n = 256
	cfg := bitspread.Config{
		N:    n,
		Rule: bitspread.Voter(1),
		Z:    1,
		X0:   bitspread.WorstCaseInit(n, 1),
	}
	if max := bitspread.MaxPackedShards(n); max != n/64 {
		t.Errorf("MaxPackedShards(%d) = %d, want %d", n, max, n/64)
	}
	results, err := bitspread.RunAgentsReplicas(cfg, bitspread.AgentOptions{Shards: 2}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(results))
	}
	for i, res := range results {
		if !res.Converged || res.FinalCount != n {
			t.Errorf("replica %d did not converge: %+v", i, res)
		}
		if res.Shards != 2 {
			t.Errorf("replica %d reports Shards=%d, want 2", i, res.Shards)
		}
	}
}

func TestPublicTaskRunner(t *testing.T) {
	out, err := bitspread.RunTask(bitspread.Task{
		Name: "facade",
		Config: bitspread.Config{
			N:    64,
			Rule: bitspread.Minority(bitspread.SqrtNLogN(1).Of(64)),
			Z:    0,
			X0:   bitspread.WorstCaseInit(64, 0),
		},
		Mode:     bitspread.ModeParallel,
		Replicas: 8,
		Seed:     7,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.ConvergedCount() != 8 {
		t.Errorf("converged %d of 8", out.ConvergedCount())
	}
	if s := bitspread.Summarize(nil); s.N != 0 {
		t.Error("Summarize facade broken")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(bitspread.AllExperiments()) != len(bitspread.ExperimentIDs()) {
		t.Error("experiment registry inconsistent")
	}
	e, ok := bitspread.ExperimentByID("F4")
	if !ok {
		t.Fatal("F4 missing")
	}
	res, err := e.Run(bitspread.ExperimentOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["identity_violations"] != 0 {
		t.Errorf("duality violated via facade: %v", res.Metrics)
	}
}

func TestPublicDual(t *testing.T) {
	res := bitspread.CoalescenceTime(128, 10_000, bitspread.NewRNG(3), false)
	if !res.Absorbed {
		t.Error("coalescence failed")
	}
	exec, err := bitspread.RunDual(16, 50, 1, 5, bitspread.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(exec.OpinionsAt(0)); got != 16 {
		t.Errorf("dual execution width = %d", got)
	}
}

// TestConflictCrossValidation cross-checks two independent
// implementations of the zealot process: the Monte-Carlo conflict engine
// and the exact conflict chain's stationary law.
func TestConflictCrossValidation(t *testing.T) {
	const (
		n      = 64
		s1, s0 = 2, 1
	)
	chain, err := bitspread.ConflictChain(bitspread.Voter(1), n, s1, s0)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.StationaryFrom(n/2, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := bitspread.DistMean(pi) / n

	res, err := bitspread.RunConflict(bitspread.ConflictConfig{
		N: n, Rule: bitspread.Voter(1), Sources1: s1, Sources0: s0,
		X0: n / 2, Rounds: 100_000,
	}, bitspread.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanFraction-exact) > 0.03 {
		t.Errorf("Monte-Carlo mean %v vs exact stationary mean %v", res.MeanFraction, exact)
	}
	want := float64(s1) / float64(s1+s0)
	if math.Abs(exact-want) > 1e-6 {
		t.Errorf("exact stationary mean %v vs zealot formula %v", exact, want)
	}
}
