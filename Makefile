# Developer and CI entry points. `make ci` is the gate: tier-1 verify plus
# vet and the race detector over the concurrent packages.

GO ?= go

.PHONY: build test verify vet-race race-packed obs-race serve-race fabric-race vm-race lint lint-fixtures lint-audit lint-baseline ci bench bench-engines bench-agents bench-packed-scale bench-fabric-scale fuzz-fault fuzz-vm bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verify (ROADMAP.md).
verify: build test

# Static analysis + race detection on the packages that spawn goroutines
# or are shared across them (the sharded agent engine, the Monte-Carlo
# runner, the fault schedules shared by replicas, and the AdoptCache
# guard).
vet-race:
	$(GO) vet ./...
	$(GO) test -race ./internal/sim/ ./internal/engine/ ./internal/fault/ ./internal/protocol/

# Focused race smoke on the sharded bitset engines: the packed and
# chunked rounds fan out one goroutine per shard over a shared pair of
# bitsets (one writer per word by construction), and this runs exactly the
# tests that exercise those fan-outs under -race. vet-race already covers
# the whole engine package; this filter keeps a fast signal for the
# word-ownership invariant itself.
race-packed:
	$(GO) test -race -run 'TestPackedSharded|TestPackedDeterministic|TestChunked|TestShardedDeterministic|TestRunAgentsReplicas|TestSeedDeterminismUnderFaults/sharded' ./internal/engine/

# Observability layer under the race detector: the shared metrics
# registry, the span writer, and the probe/observer wiring through the
# Monte-Carlo runner (obs_integration_test exercises sim.Run with a
# probe attached across worker goroutines under an active fault
# schedule).
obs-race:
	$(GO) test -race ./internal/obs/ ./internal/trace/ ./internal/sim/

# Simulation service under the race detector: the bitspreadd serving
# layer (admission control, worker pool, stream hubs, drain/shutdown)
# plus the subprocess SIGKILL/SIGTERM end-to-end proofs in
# cmd/bitspreadd.
serve-race:
	$(GO) test -race ./internal/serve/ ./cmd/bitspreadd/

# Distributed sweep fabric under the race detector: the lease board and
# shard runner, the journal partition/merge layer (exclusive locks,
# torn-tail recovery, byte-identical merges), the bitsweep
# -partition/-join CLI path, and the coordinator/pull-worker protocol in
# internal/serve and cmd/bitspreadd — including the real-subprocess
# SIGKILL + re-lease byte-identity proof.
fabric-race:
	$(GO) test -race ./internal/fabric/ ./internal/serve/
	$(GO) test -race -run 'TestJournal|TestMerge|TestRunContextPartition' ./internal/sim/
	$(GO) test -race -run 'TestRunFabric|TestRunJoin|TestRunPartition' ./cmd/bitsweep/
	$(GO) test -race -run 'TestFabricWorker|TestBadFlags' ./cmd/bitspreadd/

# Repo-specific static contracts (DESIGN.md §11, §15): bitlint
# machine-checks the determinism, probability-domain, validate-before-work,
# whole-program taint, cancellation, crash-safety, and atomic-mix
# invariants that `go vet` cannot see, over every package including cmd/.
# Zero unsuppressed diagnostics is the bar; every suppression carries a
# written justification.
lint:
	$(GO) run ./cmd/bitlint ./...

# Anti-vacuity gate for the lint suite itself: the `// want` fixture
# packages under internal/analysis/testdata prove each analyzer still
# fires on seeded violations and stays quiet on the sanctioned idioms,
# and the cmd/bitlint seeded-module tests prove the CLI surfaces every
# analyzer family end to end.
lint-fixtures:
	$(GO) test -run 'Fixtures|SuiteShape|Seeded|JSON|Baseline|SuppressionAudit' ./internal/analysis/ ./cmd/bitlint/

# Suppression ledger: list every //bitlint: justification in the tree and
# fail on any directive with an empty reason.
lint-audit:
	$(GO) run ./cmd/bitlint -suppression-audit ./...

# Snapshot the current unsuppressed findings (sorted, line-per-finding)
# so a tree with known debt can adopt the suite and still block
# regressions via `bitlint -baseline lint-baseline.txt ./...`.
lint-baseline:
	$(GO) run ./cmd/bitlint -write-baseline lint-baseline.txt ./...

# Protocol VM and evolutionary search under the race detector: the
# registry in internal/serve shares compiled programs across request
# goroutines, and evolve's evaluator fans simulation batches out over
# sim workers — both must hold under -race alongside the VM itself.
vm-race:
	$(GO) test -race ./internal/vm/ ./internal/evolve/ ./cmd/bitevolve/

# Fuzz smoke: every schedule the validator accepts must uphold the
# Perturber contracts (counts in range, source slot untouched).
fuzz-fault:
	$(GO) test -fuzz=FuzzSchedule -fuzztime=10s -run '^$$' ./internal/fault/

# Fuzz smoke for the bytecode VM: compiled builtins must agree with their
# float references on every (ell, seed) draw, and arbitrary bytes must
# never crash the validator/evaluator pair.
fuzz-vm:
	$(GO) test -fuzz=FuzzVMEquivalence -fuzztime=10s -run '^$$' ./internal/vm/
	$(GO) test -fuzz=FuzzProgramTotality -fuzztime=10s -run '^$$' ./internal/vm/

# Bench smoke: compile and run each agent-engine micro-benchmark once so
# a broken benchmark body fails CI rather than the next perf run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRunAgents|BenchmarkAgentBody' -benchtime 1x . ./internal/engine/

ci: verify vet-race race-packed obs-race serve-race fabric-race vm-race lint lint-fixtures fuzz-fault fuzz-vm bench-smoke

# Full experiment benchmarks (quick sizes; BITSPREAD_FULL=1 for the sizes
# reported in EXPERIMENTS.md).
bench:
	$(GO) test -bench . -benchtime 1x .

# Engine micro-benchmark smoke run: times serial vs. sharded agents and
# cached vs. uncached batched stepping, appending one JSON record to
# BENCH_engines.json so perf history accumulates across commits.
bench-engines:
	$(GO) run ./cmd/bitbench -suite engines -out BENCH_engines.json

# Agent-engine comparison at the acceptance size n = 2²⁰: literal
# byte-per-opinion body vs. bit-packed fast path vs. aggregated
# opinion-class engine, appending one JSON record (with pack_speedup and
# agg_speedup fields) to BENCH_engines.json.
bench-agents:
	$(GO) run ./cmd/bitbench -suite agents -n 1048576 -out BENCH_engines.json

# Multi-core scaling matrix: GOMAXPROCS × shards × n cells of the packed
# and chunked engines, each cell recording ns/op and agent-rounds/sec in
# one JSON record. Axes default to powers of two up to NumCPU, n ∈
# {2²⁰, 2²⁴} and shards ∈ {1, NumCPU}; override with SCALE_ARGS, e.g.
# SCALE_ARGS='-scale-ns 4294967296 -scale-shards 4' for a chunked-only
# huge-n record.
bench-packed-scale:
	$(GO) run ./cmd/bitbench -suite packed-scale -out BENCH_engines.json $(SCALE_ARGS)

# Distributed-sweep scaling matrix: worker counts over an in-process
# lease board, each cell timing the full lease-compute-merge cycle
# (tasks/sec, steal counts) and asserting merge byte-identity against
# the single-worker cell. Override axes with FABRIC_ARGS, e.g.
# FABRIC_ARGS='-fabric-workers 1,2,4,8 -fabric-partitions 8'.
bench-fabric-scale:
	$(GO) run ./cmd/bitbench -suite fabric-scale -out BENCH_engines.json $(FABRIC_ARGS)
