// Package bitspread is a library for studying the self-stabilizing
// bit-dissemination problem with memory-less agents, reproducing
// D'Archivio & Vacus, "Brief Announcement: On the Limits of Information
// Spread by Memory-less Agents" (PODC 2024).
//
// A population of n anonymous agents holds binary opinions; a single
// source knows the correct opinion and never deviates. In each parallel
// round every other agent draws ℓ uniform samples of current opinions and
// re-decides its own through a memory-less rule g^[b](k). The library
// provides:
//
//   - the protocol formalism (Rule) with the classical dynamics — Voter,
//     Minority, Majority, 2-Choice — and failure-injection wrappers;
//   - exact simulators for the parallel setting (O(1)/round count engine,
//     literal agent engine) and the sequential setting;
//   - the bias-polynomial analysis F_n(p) of Eq. 3 with certified root
//     isolation, the engine of the paper's Ω(n^{1-ε}) lower bound;
//   - exact Markov-chain computations (dense hitting times, closed-form
//     birth–death solutions, Doob decompositions);
//   - the coalescing-random-walk dual of the Voter (Appendix B);
//   - a Monte-Carlo experiment runner and the full reproduction harness
//     (one experiment per theorem/figure; see EXPERIMENTS.md).
//
// Quick start:
//
//	cfg := bitspread.Config{
//		N:    1 << 16,
//		Rule: bitspread.Voter(1),
//		Z:    1,
//		X0:   bitspread.WorstCaseInit(1<<16, 1),
//	}
//	res, err := bitspread.RunParallel(cfg, bitspread.NewRNG(42))
//
// The subpackages under internal/ are implementation detail; this package
// re-exports the supported surface.
package bitspread

import (
	"bitspread/internal/bias"
	"bitspread/internal/dual"
	"bitspread/internal/engine"
	"bitspread/internal/experiments"
	"bitspread/internal/fault"
	"bitspread/internal/gossip"
	"bitspread/internal/graph"
	"bitspread/internal/markov"
	"bitspread/internal/memory"
	"bitspread/internal/multi"
	"bitspread/internal/obs"
	"bitspread/internal/popproto"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/sim"
	"bitspread/internal/stats"
	"bitspread/internal/sweep"
	"bitspread/internal/trace"
)

// RNG is the deterministic, splittable generator used by every simulator.
type RNG = rng.RNG

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Rule is a memory-less update rule g^[b] : {0..ℓ} → [0,1].
type Rule = protocol.Rule

// SampleSchedule maps population size to sample size ℓ(n).
type SampleSchedule = protocol.SampleSchedule

// Family is a per-population-size protocol family {g_n}.
type Family = protocol.Family

// Rule constructors (see internal/protocol for details).
var (
	NewRule       = protocol.New
	NewSymmetric  = protocol.NewSymmetric
	Voter         = protocol.Voter
	Minority      = protocol.Minority
	Majority      = protocol.Majority
	ThreeMajority = protocol.ThreeMajority
	TwoChoice     = protocol.TwoChoice
	AntiVoter     = protocol.AntiVoter
	BiasedVoter   = protocol.BiasedVoter
	LazyVoter     = protocol.LazyVoter
	Follower      = protocol.Follower
	RandomRule    = protocol.Random
	WithNoise     = protocol.WithNoise
	WithLaziness  = protocol.WithLaziness
	MixRules      = protocol.Mix
)

// Sample-size schedules and families.
var (
	Fixed          = protocol.Fixed
	SqrtNLogN      = protocol.SqrtNLogN
	LogN           = protocol.LogN
	PowerN         = protocol.PowerN
	NewFamily      = protocol.NewFamily
	ConstantFamily = protocol.ConstantFamily
	VoterFamily    = protocol.VoterFamily
	MinorityFamily = protocol.MinorityFamily
	MajorityFamily = protocol.MajorityFamily
)

// Config describes a bit-dissemination instance; Result reports a run.
type (
	Config = engine.Config
	Result = engine.Result
	// AgentOptions tunes the literal agent-level simulator; its Shards
	// field splits the per-round loop across goroutines with independent
	// split-derived streams (deterministic per (seed, shards)), and its
	// Chunked field selects the streaming chunked-bitset body that lifts
	// the packed engine's n < 2³² gate (taken automatically at n ≥ 2³²).
	AgentOptions = engine.AgentOptions
	// AdoptCache memoizes a rule's Eq. 4 adopt probabilities per exact
	// one-count for a fixed population, the engine behind batched replica
	// stepping.
	AdoptCache = protocol.AdoptCache
)

// Engines and initial-configuration helpers.
var (
	RunParallel         = engine.RunParallel
	RunParallelReplicas = engine.RunParallelReplicas
	RunSequential       = engine.RunSequential
	RunAgents           = engine.RunAgents
	RunAgentsReplicas   = engine.RunAgentsReplicas
	RunAggregated       = engine.RunAggregated
	RunAgentsAuto       = engine.RunAgentsAuto
	CanAggregate        = engine.CanAggregate
	MaxPackedShards     = engine.MaxPackedShards
	StepCount           = engine.StepCount
	StepCountBatch      = engine.StepCountBatch
	SequentialStep      = engine.SequentialStep
	WorstCaseInit       = engine.WorstCaseInit
	BalancedInit        = engine.BalancedInit
	AdversarialConfig   = engine.AdversarialConfig
	DefaultMaxRounds    = engine.DefaultMaxRounds
	NewAdoptCache       = protocol.NewAdoptCache
)

// Fault injection: a FaultSchedule is a validated, immutable list of
// mid-run perturbations (resets, churn, stubborn minorities, sample
// omission, source crashes) assigned to Config.Faults; engines apply it
// at round boundaries, deterministically per seed, and only credit
// consensus from the schedule's horizon onward. See DESIGN.md §9.
type (
	FaultSchedule = fault.Schedule
	FaultEvent    = fault.Event
)

// Fault-schedule constructors.
var (
	NewFaultSchedule = fault.New
	MustFaults       = fault.Must
	ResetAt          = fault.ResetAt
	ChurnAt          = fault.ChurnAt
	StubbornFor      = fault.StubbornFor
	OmissionFor      = fault.OmissionFor
	SourceCrashFor   = fault.SourceCrashFor
)

// BiasAnalysis is the root-and-sign portrait of a rule's bias polynomial
// F_n (Eq. 3); BiasCase identifies the Theorem 12 proof case.
type (
	BiasAnalysis = bias.Analysis
	BiasCase     = bias.Case
)

// Bias-analysis entry points and case constants.
var (
	AnalyzeBias    = bias.For
	BiasPolynomial = bias.Polynomial
)

// Fixpoint stability classes of the mean-field map p ↦ p + F(p).
type (
	Fixpoint  = bias.Fixpoint
	Stability = bias.Stability
)

// Stability values.
const (
	Attracting = bias.Attracting
	Repelling  = bias.Repelling
	SemiStable = bias.SemiStable
)

// Theorem 12 proof cases.
const (
	CaseZero     = bias.CaseZero
	CaseNegative = bias.CaseNegative
	CasePositive = bias.CasePositive
)

// Markov-chain machinery: exact chains, birth–death closed forms, Doob
// decompositions.
type (
	Chain      = markov.Chain
	BirthDeath = markov.BirthDeath
	Doob       = markov.Doob
)

var (
	NewChain             = markov.New
	NewBirthDeath        = markov.NewBirthDeath
	ParallelChain        = markov.ParallelChain
	SequentialBirthDeath = markov.SequentialBirthDeath
	ConflictChain        = markov.ConflictChain
	DoobDecompose        = markov.Decompose
	TotalVariation       = markov.TotalVariation
	DistMean             = markov.Mean
)

// Dual-process machinery (Appendix B).
type (
	DualExecution     = dual.Execution
	CoalescenceResult = dual.CoalescenceResult
)

var (
	RunDual         = dual.Run
	CoalescenceTime = dual.CoalescenceTime
)

// Monte-Carlo runner.
type (
	Task    = sim.Task
	Outcome = sim.Outcome
	Mode    = sim.Mode
)

// Activation modes for Task.
const (
	ModeParallel   = sim.Parallel
	ModeSequential = sim.Sequential
	ModeAgentLevel = sim.AgentLevel
	ModeAggregated = sim.Aggregated
)

// RunTask executes a Monte-Carlo task over seeded replicas.
var RunTask = sim.Run

// Experiment harness (the reproduction of every table and figure).
type (
	Experiment        = experiments.Experiment
	ExperimentOptions = experiments.Options
	ExperimentResult  = experiments.Result
)

var (
	AllExperiments = experiments.All
	ExperimentByID = experiments.ByID
	ExperimentIDs  = experiments.IDs
)

// Topology-restricted sampling (related work [24]): dynamics on graphs.
type (
	Topology    = graph.Topology
	GraphConfig = graph.Config
	GraphResult = graph.Result
)

var (
	NewComplete   = graph.NewComplete
	NewRing       = graph.NewRing
	NewTorus      = graph.NewTorus
	NewStar       = graph.NewStar
	NewErdosRenyi = graph.NewErdosRenyi
	RunOnGraph    = graph.Run
)

// Active-communication gossip baseline (the model's forbidden contrast).
type (
	GossipConfig = gossip.Config
	GossipResult = gossip.Result
	GossipMode   = gossip.Mode
)

// Gossip exchange modes.
const (
	GossipPush     = gossip.Push
	GossipPull     = gossip.Pull
	GossipPushPull = gossip.PushPull
)

// SpreadGossip runs an active rumor-spreading round sequence.
var SpreadGossip = gossip.Spread

// Bounded-memory extension (§5 direction): finite-state agents.
type (
	MemoryProtocol = memory.Protocol
	MemoryState    = memory.State
	MemoryConfig   = memory.Config
	MemoryResult   = memory.Result
)

var (
	NewMemoryAdapter       = memory.NewAdapter
	NewAccumulatorMinority = memory.NewAccumulatorMinority
	RunMemory              = memory.Run
)

// Conflicting-sources extension (§1.3, majority bit dissemination):
// stubborn agents on both sides.
type (
	ConflictConfig = engine.ConflictConfig
	ConflictResult = engine.ConflictResult
)

var (
	RunConflict  = engine.RunConflict
	StepConflict = engine.StepConflict
)

// Trajectory recording and terminal rendering. A TraceRecorder also
// implements Probe, so it can be attached to Config.Probe instead of (or
// alongside) Config.Record.
type TraceRecorder = trace.Recorder

var (
	NewTraceRecorder = trace.NewRecorder
	TraceForBudget   = trace.ForBudget
	Sparkline        = trace.Sparkline
)

// Observability: engines accept a Probe (structured per-round events),
// the Monte-Carlo runner accepts an Observer (replica lifecycle spans),
// and the obs package provides the standard atomic implementations plus
// a Prometheus-style text registry. See DESIGN.md §12.
type (
	Probe           = engine.Probe
	Observer        = sim.Observer
	Metrics         = obs.Metrics
	MetricsRegistry = obs.Registry
	SpanWriter      = obs.SpanWriter
	RunObserver     = obs.RunObserver
)

var (
	NewMetricsRegistry   = obs.NewRegistry
	NewMetrics           = obs.NewMetrics
	NewSpanWriter        = obs.NewSpanWriter
	NewRunObserver       = obs.NewRunObserver
	WriteMetricsSnapshot = obs.WriteSnapshot
)

// Population-protocol baseline ([22] contrast): active pairwise
// interactions with bounded per-agent state.
type (
	PairwiseProtocol = popproto.Protocol
	PairwiseState    = popproto.State
	PairwiseConfig   = popproto.Config
	PairwiseResult   = popproto.Result
)

// Pairwise reference protocols.
var RunPairwise = popproto.Run

type (
	Epidemic          = popproto.Epidemic
	PairwiseVoter     = popproto.PairwiseVoter
	FourStateMajority = popproto.FourStateMajority
)

// Multi-opinion extension (footnote 2): q >= 2 opinions under the
// never-adopt-unseen constraint.
type (
	MultiRule   = multi.Rule
	MultiConfig = multi.Config
	MultiResult = multi.Result
)

var (
	MultiVoter       = multi.Voter
	MultiMinority    = multi.Minority
	MultiUndecided   = multi.Undecided
	MultiValidate    = multi.Validate
	MultiStep        = multi.Step
	RunMultiParallel = multi.RunParallel
)

// Parameter-sweep framework: families × sizes → convergence statistics.
type (
	SweepGrid = sweep.Grid
	SweepCell = sweep.Cell
	SweepInit = sweep.Init
)

// Sweep initial-configuration kinds.
const (
	SweepWorstCase   = sweep.WorstCase
	SweepBalanced    = sweep.Balanced
	SweepAdversarial = sweep.Adversarial
)

var (
	SweepTable       = sweep.Table
	SweepFitExponent = sweep.FitExponent
)

// Statistics helpers commonly needed alongside the runner.
type (
	Summary  = stats.Summary
	PowerFit = stats.PowerFit
)

var (
	Summarize = stats.Summarize
	FitPower  = stats.FitPower
)
