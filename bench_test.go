// Benchmark harness: one target per table and figure of the reproduction
// index (DESIGN.md §4), plus micro-benchmarks and ablations for the hot
// paths. Each experiment benchmark executes the experiment and reports
// its headline metrics through b.ReportMetric; run with -v to also see
// the rendered tables (they are logged once per target).
//
// By default the experiments run at their Quick sizes so `go test
// -bench=.` finishes in minutes; set BITSPREAD_FULL=1 for the full-size
// sweeps reported in EXPERIMENTS.md.
package bitspread_test

import (
	"os"
	"runtime"
	"testing"

	"bitspread"
)

// benchOpts returns the sizing used by the experiment benchmarks.
func benchOpts() bitspread.ExperimentOptions {
	return bitspread.ExperimentOptions{
		Seed:  2024,
		Quick: os.Getenv("BITSPREAD_FULL") == "",
	}
}

// benchExperiment runs one experiment per iteration and reports its
// metrics; the table is logged on the first iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bitspread.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s — %s\n%s\nverdict: %s", e.ID, e.Title, res.Table.String(), res.Verdict)
			for k, v := range res.Metrics {
				b.ReportMetric(v, k)
			}
		}
	}
}

// Experiment benchmarks — the reproduction of every table and figure.

func BenchmarkTable1LowerBound(b *testing.B)        { benchExperiment(b, "T1") }
func BenchmarkTable2VoterUpper(b *testing.B)        { benchExperiment(b, "T2") }
func BenchmarkTable3MinorityBigSample(b *testing.B) { benchExperiment(b, "T3") }
func BenchmarkTable4Sequential(b *testing.B)        { benchExperiment(b, "T4") }
func BenchmarkTable5Prop3(b *testing.B)             { benchExperiment(b, "T5") }
func BenchmarkTable6JumpBound(b *testing.B)         { benchExperiment(b, "T6") }
func BenchmarkTable7Drift(b *testing.B)             { benchExperiment(b, "T7") }
func BenchmarkFigure1Escape(b *testing.B)           { benchExperiment(b, "F1") }
func BenchmarkFigure2Case1(b *testing.B)            { benchExperiment(b, "F2") }
func BenchmarkFigure3Case2(b *testing.B)            { benchExperiment(b, "F3") }
func BenchmarkFigure4Dual(b *testing.B)             { benchExperiment(b, "F4") }
func BenchmarkX1Threshold(b *testing.B)             { benchExperiment(b, "X1") }
func BenchmarkX2MajorityFails(b *testing.B)         { benchExperiment(b, "X2") }
func BenchmarkX3SampleSizeBoundary(b *testing.B)    { benchExperiment(b, "X3") }
func BenchmarkX4MemoryAblation(b *testing.B)        { benchExperiment(b, "X4") }
func BenchmarkX5MultiOpinion(b *testing.B)          { benchExperiment(b, "X5") }
func BenchmarkX6ExponentialTrap(b *testing.B)       { benchExperiment(b, "X6") }
func BenchmarkX7ConflictingSources(b *testing.B)    { benchExperiment(b, "X7") }
func BenchmarkX8PricePassivity(b *testing.B)        { benchExperiment(b, "X8") }
func BenchmarkX9Topology(b *testing.B)              { benchExperiment(b, "X9") }
func BenchmarkX10Universality(b *testing.B)         { benchExperiment(b, "X10") }
func BenchmarkX11PopulationProtocols(b *testing.B)  { benchExperiment(b, "X11") }

// Micro-benchmarks and ablations.

// BenchmarkStepCount measures the exact count engine's per-round cost —
// the number that makes 10⁸-agent populations tractable.
func BenchmarkStepCount(b *testing.B) {
	for _, tc := range []struct {
		name string
		n    int64
		rule *bitspread.Rule
	}{
		{"voter/n=1e4", 10_000, bitspread.Voter(1)},
		{"voter/n=1e8", 100_000_000, bitspread.Voter(1)},
		{"minority3/n=1e6", 1_000_000, bitspread.Minority(3)},
		{"minorityBig/n=1e6", 1_000_000, bitspread.Minority(bitspread.SqrtNLogN(1).Of(1_000_000))},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g := bitspread.NewRNG(1)
			x := tc.n / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x = bitspread.StepCount(tc.rule, tc.n, 1, x, g)
				if x < 1 {
					x = 1
				}
			}
		})
	}
}

// BenchmarkEngineAblation compares the exact count engine against the
// literal agent engine on the same instance — the core design choice
// (DESIGN.md §6).
func BenchmarkEngineAblation(b *testing.B) {
	const n = 4096
	cfg := bitspread.Config{
		N:         n,
		Rule:      bitspread.Minority(3),
		Z:         1,
		X0:        n / 2,
		MaxRounds: 64,
	}
	b.Run("count", func(b *testing.B) {
		g := bitspread.NewRNG(1)
		for i := 0; i < b.N; i++ {
			if _, err := bitspread.RunParallel(cfg, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("agent", func(b *testing.B) {
		g := bitspread.NewRNG(1)
		for i := 0; i < b.N; i++ {
			if _, err := bitspread.RunAgents(cfg, bitspread.AgentOptions{}, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("agent-noreplace", func(b *testing.B) {
		g := bitspread.NewRNG(1)
		opts := bitspread.AgentOptions{WithoutReplacement: true}
		for i := 0; i < b.N; i++ {
			if _, err := bitspread.RunAgents(cfg, opts, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunAgents compares the agent-engine variants on the
// acceptance instance n = 2¹⁸, ℓ = 3: the historical byte-per-opinion
// body (literal), its bit-packed fast path (packed, the RunAgents
// default), the GOMAXPROCS-sharded packed engine, and the aggregated
// opinion-class engine which collapses the round to O(classes·ℓ)
// multinomial/binomial splits (DESIGN.md §10). Throughput is reported
// as agent updates per second where the engine performs per-agent work.
func BenchmarkRunAgents(b *testing.B) {
	const n = 1 << 18
	cfg := bitspread.Config{
		N:         n,
		Rule:      bitspread.Minority(3),
		Z:         1,
		X0:        n / 2,
		MaxRounds: 2,
	}
	run := func(b *testing.B, opts bitspread.AgentOptions) {
		g := bitspread.NewRNG(1)
		var updates int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := bitspread.RunAgents(cfg, opts, g)
			if err != nil {
				b.Fatal(err)
			}
			updates += res.Activations
		}
		b.ReportMetric(float64(updates)/b.Elapsed().Seconds()/1e6, "Mupdates/s")
	}
	b.Run("literal", func(b *testing.B) { run(b, bitspread.AgentOptions{Unpacked: true}) })
	b.Run("packed", func(b *testing.B) { run(b, bitspread.AgentOptions{}) })
	b.Run("sharded", func(b *testing.B) {
		run(b, bitspread.AgentOptions{Shards: runtime.GOMAXPROCS(0)})
	})
	b.Run("aggregated", func(b *testing.B) {
		g := bitspread.NewRNG(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bitspread.RunAggregated(cfg, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStepCountBatch measures one lockstep round of a replica batch
// with and without the adopt-probability cache, across the sample-size
// regimes of the paper (constant ℓ and ℓ = ⌈√(n ln n)⌉, where the O(ℓ)
// Eq. 4 sum dominates and caching should win ≥ 5× per replica-round).
func BenchmarkStepCountBatch(b *testing.B) {
	const (
		n        = 1 << 16
		z        = 1
		replicas = 1024 // full-sweep scale; cross-replica sharing is the point
	)
	for _, ell := range []int{1, 3, bitspread.SqrtNLogN(1).Of(n)} {
		rule := bitspread.Minority(ell)
		newBatch := func() ([]int64, []*bitspread.RNG) {
			xs := make([]int64, replicas)
			gs := make([]*bitspread.RNG, replicas)
			master := bitspread.NewRNG(7)
			for i := range xs {
				xs[i] = n / 2
				gs[i] = bitspread.NewRNG(master.Uint64())
			}
			return xs, gs
		}
		// Replicas that reach a consensus are re-seeded at n/2 so the
		// batch stays in the pre-consensus band where Eq. 4 is actually
		// evaluated (big-sample Minority absorbs in polylog rounds);
		// both variants apply the identical reset.
		reheat := func(xs []int64) {
			for r := range xs {
				if xs[r] <= 1 || xs[r] >= n-1 {
					xs[r] = n / 2
				}
			}
		}
		b.Run("uncached/"+byEll(ell), func(b *testing.B) {
			xs, gs := newBatch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := range xs {
					xs[r] = bitspread.StepCount(rule, n, z, xs[r], gs[r])
				}
				reheat(xs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/replicas, "ns/replica-round")
		})
		b.Run("cached/"+byEll(ell), func(b *testing.B) {
			xs, gs := newBatch()
			cache := bitspread.NewAdoptCache(rule, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bitspread.StepCountBatch(cache, z, xs, gs)
				reheat(xs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/replicas, "ns/replica-round")
		})
	}
}

// BenchmarkAdoptProb measures the Eq. 4 evaluation across sample sizes —
// the hot inner call of every engine (mode-recurrence ablation target).
func BenchmarkAdoptProb(b *testing.B) {
	for _, ell := range []int{1, 3, 16, 256, 4096} {
		rule := bitspread.Minority(ell)
		b.Run(byEll(ell), func(b *testing.B) {
			p := 0.37
			for i := 0; i < b.N; i++ {
				_ = rule.AdoptProb(i&1, p)
			}
		})
	}
}

func byEll(ell int) string {
	switch {
	case ell < 10:
		return "ell=" + string(rune('0'+ell))
	default:
		return "ell=big/" + itoa(ell)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkSequentialStep measures the birth–death activation step.
func BenchmarkSequentialStep(b *testing.B) {
	g := bitspread.NewRNG(1)
	rule := bitspread.Voter(1)
	x := int64(500_000)
	for i := 0; i < b.N; i++ {
		x = bitspread.SequentialStep(rule, 1_000_000, 1, x, g)
		if x < 1 {
			x = 1
		}
	}
}

// BenchmarkCoalescence measures the dual process (Figure 4 engine).
func BenchmarkCoalescence(b *testing.B) {
	g := bitspread.NewRNG(1)
	for i := 0; i < b.N; i++ {
		bitspread.CoalescenceTime(1024, 1_000_000, g.Split(), false)
	}
}

// BenchmarkExactChain measures dense-chain construction plus hitting-time
// solve (the validation path of T7 and bitexact).
func BenchmarkExactChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chain, err := bitspread.ParallelChain(bitspread.Minority(3), 128, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := chain.ExpectedHittingTimes(map[int]bool{128: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBiasAnalysis measures the Eq. 3 polynomial construction and
// root isolation.
func BenchmarkBiasAnalysis(b *testing.B) {
	for _, ell := range []int{3, 8, 16} {
		b.Run("ell="+itoa(ell), func(b *testing.B) {
			rule := bitspread.Minority(ell)
			for i := 0; i < b.N; i++ {
				_ = bitspread.AnalyzeBias(rule)
			}
		})
	}
}
