// bitspreadd_client is a well-behaved client for the bitspreadd daemon:
// it submits a job with seeded retry-with-jittered-backoff, honours the
// server's Retry-After when it is shed by quota (429) or backpressure
// (503), polls the job with the same backoff, and prints the result
// summary.
//
// Start a daemon and run against it:
//
//	go run ./cmd/bitspreadd -addr 127.0.0.1:8642 -data /tmp/bitspreadd &
//	go run ./examples/bitspreadd_client -addr 127.0.0.1:8642 -n 4096 -replicas 200
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"bitspread/internal/cli"
	"bitspread/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8642", "bitspreadd address")
		n        = flag.Int64("n", 4096, "population size")
		rule     = flag.String("rule", "voter", "update rule")
		replicas = flag.Int("replicas", 100, "independent seeded runs")
		seed     = flag.Uint64("seed", 2024, "task seed (also seeds the client's backoff jitter)")
		tenant   = flag.String("tenant", "", "tenant name for quota accounting")
		attempts = flag.Int("attempts", 8, "max tries per request before giving up")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := "http://" + *addr
	spec := serve.JobSpec{
		Name:     "client",
		N:        *n,
		Z:        1,
		Rule:     *rule,
		Replicas: *replicas,
		Seed:     *seed,
		Tenant:   *tenant,
	}

	// Submit with backoff: 429/503 are the daemon shedding load and carry a
	// Retry-After we must not undercut; 4xx specs are permanent.
	var status serve.JobStatus
	backoff := cli.NewBackoff(200*time.Millisecond, 10*time.Second, *seed)
	err := cli.Retry(ctx, *attempts, backoff, nil, func() error {
		return postJob(base, spec, &status)
	})
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("job %s: %s\n", status.ID, status.State)

	// Poll to completion with the same schedule, reset now that the server
	// has accepted the work.
	backoff.Reset()
	err = cli.Retry(ctx, 10_000, backoff, nil, func() error {
		if err := getJSON(base+"/v1/jobs/"+status.ID, &status); err != nil {
			return err
		}
		switch status.State {
		case "done":
			return nil
		case "failed", "cancelled":
			return cli.Permanent(fmt.Errorf("job ended %s: %s", status.State, status.Error))
		default:
			return fmt.Errorf("job still %s", status.State)
		}
	})
	if err != nil {
		log.Fatalf("poll: %v", err)
	}

	var result serve.JobResult
	if err := getJSON(base+"/v1/jobs/"+status.ID+"/result", &result); err != nil {
		log.Fatalf("result: %v", err)
	}
	fmt.Printf("replicas=%d converged=%d success=%.3f [%.3f, %.3f]\n",
		result.Replicas, result.Converged, result.SuccessRate, result.SuccessLo, result.SuccessHi)
}

// postJob submits the spec, classifying the response for the retry loop:
// nil on acceptance, RetryAfter on shed load, Permanent on client error.
func postJob(base string, spec serve.JobSpec, out *serve.JobStatus) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return cli.Permanent(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err // transport errors are worth a retry
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
		return json.NewDecoder(resp.Body).Decode(out)
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		err := fmt.Errorf("server shed the job: %s", readError(resp.Body))
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			return cli.RetryAfter(err, time.Duration(secs)*time.Second)
		}
		return err
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return cli.Permanent(fmt.Errorf("rejected (%d): %s", resp.StatusCode, readError(resp.Body)))
	default:
		return fmt.Errorf("status %d: %s", resp.StatusCode, readError(resp.Body))
	}
}

// getJSON fetches a JSON endpoint into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, readError(resp.Body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// readError extracts the daemon's JSON error body, falling back to raw
// text.
func readError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var apiErr struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &apiErr) == nil && apiErr.Error != "" {
		return apiErr.Error
	}
	return string(bytes.TrimSpace(b))
}
