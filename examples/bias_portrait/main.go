// Bias portraits: the paper's proof technique as a user-facing analysis.
//
// The lower bound of Theorem 12 classifies every memory-less protocol by
// the root structure of its bias polynomial F_n (Eq. 3). This example
// prints the portrait — polynomial, roots, sign pattern, proof case and
// adversarial instance — for a gallery of dynamics, then verifies each
// prediction with a short simulation.
//
// Run with:
//
//	go run ./examples/bias_portrait
package main

import (
	"fmt"
	"log"

	"bitspread"
)

func main() {
	rules := []*bitspread.Rule{
		bitspread.Voter(3),
		bitspread.Minority(3),
		bitspread.Minority(4),
		bitspread.Majority(3),
		bitspread.TwoChoice(),
		bitspread.BiasedVoter(4, 0.05),
		bitspread.BiasedVoter(4, -0.05),
	}

	for _, r := range rules {
		a := bitspread.AnalyzeBias(r)
		fmt.Printf("— %v —\n", r)
		if a.IsZero() {
			fmt.Println("  F ≡ 0 (Lemma 11: driftless)")
		} else {
			fmt.Printf("  F(p)  = %v\n", a.F())
			fmt.Printf("  roots = %.4v   signs between = %v\n", a.Roots(), a.Signs())
		}
		fmt.Printf("  case  : %v\n", a.Classify())

		// Verify the proof's prediction on a finite instance: from the
		// adversarial start, the chain must not converge quickly.
		const n = 4096
		budget := int64(400) // ≪ n^{1-ε}
		cfg, consts := bitspread.AdversarialConfig(r, n, budget)
		res, err := bitspread.RunParallel(cfg, bitspread.NewRNG(99))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  adversarial run: z=%d, X0/n=%.3f → converged within %d rounds: %v (paper predicts slow)\n\n",
			consts.Z, consts.X0Frac, budget, res.Converged)
	}
}
