// Topology sensitivity: what the paper's uniform-sampling assumption is
// worth.
//
// The model samples uniformly from the whole population — a complete
// interaction graph. This example restricts the Voter's samples to graph
// neighbors (the [24] direction) and measures how the source's reach
// degrades as mixing gets worse: expanders behave like the complete
// graph, the 2-D torus pays a constant-dimension price, and the 1-D ring
// is drastically slower.
//
// Run with:
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"log"
	"math"

	"bitspread"
)

const (
	side = 14 // torus side: n = 196
	reps = 10
	seed = 77
)

func main() {
	n := side * side
	master := bitspread.NewRNG(seed)

	complete, err := bitspread.NewComplete(n)
	if err != nil {
		log.Fatal(err)
	}
	torus, err := bitspread.NewTorus(side, side)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := bitspread.NewRing(n, 1)
	if err != nil {
		log.Fatal(err)
	}
	ring4, err := bitspread.NewRing(n, 4)
	if err != nil {
		log.Fatal(err)
	}
	er, err := bitspread.NewErdosRenyi(n, 4*math.Log(float64(n))/float64(n), master.Split())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Voter bit dissemination by topology (n=%d, all-wrong start, z=1)\n\n", n)
	fmt.Printf("%-18s %14s %14s\n", "topology", "mean τ", "vs complete")
	base := 0.0
	for _, topo := range []bitspread.Topology{complete, er, ring4, torus, ring} {
		sum := 0.0
		for rep := 0; rep < reps; rep++ {
			res, err := bitspread.RunOnGraph(bitspread.GraphConfig{
				Topology:    topo,
				Rule:        bitspread.Voter(1),
				Z:           1,
				InitialOnes: 0,
				MaxRounds:   int64(8 * n * n),
			}, master.Split())
			if err != nil {
				log.Fatal(err)
			}
			if !res.Converged {
				log.Fatalf("%s: run did not converge", topo.Name())
			}
			sum += float64(res.Rounds)
		}
		mean := sum / reps
		//bitlint:floatexact zero is the explicit not-yet-set sentinel; real means are >= 1 round
		if base == 0 {
			base = mean
		}
		fmt.Printf("%-18s %14.0f %13.1fx\n", topo.Name(), mean, mean/base)
	}
	fmt.Println("\nreading: the paper's uniform-sampling model is the best case;")
	fmt.Println("poor mixing (low-dimensional lattices) slows the source's influence polynomially.")
}
