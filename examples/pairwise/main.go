// Population protocols: the other side of the paper's model boundary.
//
// The paper's agents observe sampled opinions passively and keep no
// memory; [22] (cited in §1.3) shows that in the population-protocol
// model — active pairwise interactions with O(1) state — bit
// dissemination is solvable. This example runs the three reference
// automata and shows where the power comes from:
//
//  1. Epidemic broadcast: Θ(n log n) interactions (Θ(log n) parallel
//     time) — what "being able to tell who is informed" buys.
//  2. Pairwise Voter with a pinned source: the passive baseline in
//     pairwise clothing, Θ(n²) interactions.
//  3. Four-state exact majority with a pinned strong source, started
//     against an 80% wrong majority: the source annihilates opposing
//     strong agents without ever being consumed, then converts the rest —
//     2 bits of memory + active communication beat the configuration the
//     passive model cannot.
//
// Run with:
//
//	go run ./examples/pairwise
package main

import (
	"fmt"
	"log"
	"math"

	"bitspread"
)

const (
	n    = 1024
	seed = 99
)

func main() {
	master := bitspread.NewRNG(seed)

	run := func(name string, cfg bitspread.PairwiseConfig) {
		res, err := bitspread.RunPairwise(cfg, master.Split())
		if err != nil {
			log.Fatal(err)
		}
		perAgent := float64(res.Interactions) / n
		fmt.Printf("%-42s success=%-5v  %9d interactions  (%.1f per agent, %.2f·n·ln n)\n",
			name, res.Stopped, res.Interactions, perAgent,
			float64(res.Interactions)/(n*math.Log(n)))
	}

	run("epidemic broadcast from one informed", bitspread.PairwiseConfig{
		N:        n,
		Protocol: bitspread.Epidemic{},
		Init: func(i int) bitspread.PairwiseState {
			if i == 0 {
				return 1
			}
			return 0
		},
		SourceState: -1,
		Stop:        func(out [2]int) bool { return out[1] == n },
	})

	run("pairwise Voter + source, all wrong", bitspread.PairwiseConfig{
		N:           n,
		Protocol:    bitspread.PairwiseVoter{},
		Init:        func(int) bitspread.PairwiseState { return 0 },
		SourceState: 1,
		Stop:        func(out [2]int) bool { return out[1] == n },
	})

	run("4-state majority + source, 80% wrong", bitspread.PairwiseConfig{
		N:        n,
		Protocol: bitspread.FourStateMajority{},
		Init: func(i int) bitspread.PairwiseState {
			if i < n/5 {
				return 3 // StrongOne: the source's minority side
			}
			return 0 // StrongZero
		},
		SourceState:     3,
		MaxInteractions: int64(n) * int64(n) * 64,
		Stop:            func(out [2]int) bool { return out[1] == n },
	})

	fmt.Println("\nreading: activeness (reading the partner's state) plus 2 bits of memory")
	fmt.Println("solve what Theorem 1 forbids in the passive, memory-less model.")
}
