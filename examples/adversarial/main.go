// Adversarial scenarios and failure injection: what breaks, and how.
//
// Bit dissemination is self-stabilizing: a protocol must converge from
// every initial configuration. This example walks through the ways a
// system fails that obligation —
//
//  1. a rule that violates Proposition 3 (noise injection) cannot hold a
//     consensus at all;
//  2. Majority, despite satisfying Proposition 3, locks the wrong
//     consensus from adversarial starts (no source sensitivity);
//  3. laziness (omission failures) slows a valid rule but preserves
//     correctness;
//  4. the Theorem 12 adversarial instance stalls even the Voter.
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"bitspread"
)

const (
	n    = 4096
	seed = 5
)

func main() {
	scenario1Noise()
	scenario2Majority()
	scenario3Laziness()
	scenario4Adversarial()
}

func runOnce(rule *bitspread.Rule, z int, x0, budget int64) bitspread.Result {
	res, err := bitspread.RunParallel(bitspread.Config{
		N: n, Rule: rule, Z: z, X0: x0, MaxRounds: budget,
	}, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func scenario1Noise() {
	fmt.Println("1. noise injection: flipping each decision with probability 0.01")
	noisy := bitspread.WithNoise(bitspread.Voter(1), 0.01)
	fmt.Printf("   CheckProp3: %v\n", noisy.CheckProp3())
	res := runOnce(noisy, 1, n, 2000) // start AT the correct consensus
	fmt.Printf("   started at the correct consensus; after %d rounds the count is %d/%d — consensus not held\n\n",
		res.Rounds, res.FinalCount, n)
}

func scenario2Majority() {
	fmt.Println("2. Majority dynamics from a wrong-leaning start (70% wrong, z=1)")
	ell := bitspread.SqrtNLogN(1).Of(n)
	maj := runOnce(bitspread.Majority(ell), 1, int64(3*n/10), 2000)
	min := runOnce(bitspread.Minority(ell), 1, int64(3*n/10), 2000)
	fmt.Printf("   Majority(ℓ=%d): converged=%v, visited wrong consensus=%v\n", ell, maj.Converged, maj.HitWrongConsensus)
	fmt.Printf("   Minority(ℓ=%d): converged=%v in %d rounds — the same samples, but source-sensitive\n\n",
		ell, min.Converged, min.Rounds)
}

func scenario3Laziness() {
	fmt.Println("3. omission failures: 30% of activations lost (lazy wrapper)")
	base := runOnce(bitspread.Voter(1), 1, 1, 0)
	lazy := runOnce(bitspread.WithLaziness(bitspread.Voter(1), 0.3), 1, 1, 0)
	fmt.Printf("   Voter:        converged=%v in %d rounds\n", base.Converged, base.Rounds)
	fmt.Printf("   lazy Voter:   converged=%v in %d rounds (correct, ~1/(1-q) slower)\n\n",
		lazy.Converged, lazy.Rounds)
}

func scenario4Adversarial() {
	fmt.Println("4. the Theorem 12 adversarial instance for Minority(ℓ=3)")
	cfg, c := bitspread.AdversarialConfig(bitspread.Minority(3), n, 3000)
	res, err := bitspread.RunParallel(cfg, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   bias case: %v\n", bitspread.AnalyzeBias(bitspread.Minority(3)).Classify())
	fmt.Printf("   z=%d, X0/n=%.3f → converged within 3000 rounds: %v (final count %d, attractor near n/2)\n",
		c.Z, c.X0Frac, res.Converged, res.FinalCount)
	fmt.Println("   the same rule with ℓ=√(n·ln n) from its worst start:")
	fast := runOnce(bitspread.Minority(bitspread.SqrtNLogN(1).Of(n)), 1, 1, 3000)
	fmt.Printf("   converged=%v in %d rounds — the lower bound is about constant ℓ\n", fast.Converged, fast.Rounds)
}
