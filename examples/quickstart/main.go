// Quickstart: solve one bit-dissemination instance with the Voter dynamics
// and inspect the paper's headline quantities along the way.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"bitspread"
)

func main() {
	const (
		n    = 1 << 14 // 16384 agents, one of them the source
		z    = 1       // the correct opinion only the source knows
		seed = 42
	)

	// The Voter dynamics: adopt the opinion of one random sample.
	rule := bitspread.Voter(1)

	// Any rule hoping to solve the problem must satisfy Proposition 3.
	if err := rule.CheckProp3(); err != nil {
		log.Fatalf("rule cannot solve bit dissemination: %v", err)
	}

	// The adversary picks the worst initial configuration: every agent
	// except the source starts with the wrong opinion.
	cfg := bitspread.Config{
		N:    n,
		Rule: rule,
		Z:    z,
		X0:   bitspread.WorstCaseInit(n, z),
	}

	res, err := bitspread.RunParallel(cfg, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("did not converge within the default budget: %+v", res)
	}

	bound := 2 * float64(n) * math.Log(n)
	fmt.Printf("population:    %d agents (source holds z=%d)\n", n, z)
	fmt.Printf("initial state: only the source is right\n")
	fmt.Printf("converged in:  %d parallel rounds\n", res.Rounds)
	fmt.Printf("Theorem 2:     O(n log n) — e.g. 2n·ln n = %.0f rounds — holds: %v\n",
		bound, float64(res.Rounds) <= bound)

	// The same run takes exponentially longer than the Minority dynamics
	// with large samples ([15]); see examples/minority_threshold.
	ell := bitspread.SqrtNLogN(1).Of(n)
	fast, err := bitspread.RunParallel(bitspread.Config{
		N: n, Rule: bitspread.Minority(ell), Z: z, X0: bitspread.WorstCaseInit(n, z),
	}, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMinority with ℓ=√(n·ln n)=%d converged in %d rounds (%.0fx speedup)\n",
		ell, fast.Rounds, float64(res.Rounds)/float64(fast.Rounds))
}
