// Minority threshold sweep: the paper's open question made tangible.
//
// Theorem 1 shows constant sample sizes force almost-linear convergence;
// [15] shows ℓ = √(n log n) suffices for polylogarithmic convergence. The
// regime in between is open — and, as the paper notes, "simulations
// suggest that its convergence might be fast even when the sample size is
// qualitatively small". This example sweeps ℓ at a fixed population and
// reports where convergence within a polylog budget switches on.
//
// Run with:
//
//	go run ./examples/minority_threshold
package main

import (
	"fmt"
	"log"
	"math"

	"bitspread"
)

func main() {
	const (
		n        = 1 << 14
		z        = 1
		replicas = 12
		seed     = 7
	)
	logn := math.Log(n)
	budget := int64(60 * logn * logn)
	sqrtEll := bitspread.SqrtNLogN(1).Of(n)

	fmt.Printf("Minority dynamics, n=%d, all-wrong start, budget=%d rounds (60·ln²n)\n", n, budget)
	fmt.Printf("the [15] analysis needs ℓ ≥ √(n·ln n) = %d\n\n", sqrtEll)
	fmt.Printf("%8s  %12s  %14s\n", "ℓ", "P(converge)", "mean τ rounds")

	firstFast := -1
	for _, ell := range []int{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, sqrtEll / 2, sqrtEll} {
		out, err := bitspread.RunTask(bitspread.Task{
			Name: "threshold",
			Config: bitspread.Config{
				N:         n,
				Rule:      bitspread.Minority(ell),
				Z:         z,
				X0:        bitspread.WorstCaseInit(n, z),
				MaxRounds: budget,
			},
			Mode:     bitspread.ModeParallel,
			Replicas: replicas,
			Seed:     seed + uint64(ell),
		}, 0)
		if err != nil {
			log.Fatal(err)
		}
		rate, _, _ := out.SuccessRate()
		s := out.RoundsSummary()
		mean := "-"
		if s.N > 0 {
			mean = fmt.Sprintf("%.1f", s.Mean)
		}
		fmt.Printf("%8d  %12.2f  %14s\n", ell, rate, mean)
		if firstFast < 0 && rate >= 0.9 {
			firstFast = ell
		}
	}

	fmt.Println()
	switch {
	case firstFast < 0:
		fmt.Println("no sample size converged reliably within the budget at this n")
	case firstFast < sqrtEll:
		fmt.Printf("fast convergence switched on at ℓ=%d — far below the √(n·ln n)=%d the proof requires,\n", firstFast, sqrtEll)
		fmt.Println("matching the paper's remark that the true threshold is unknown and possibly much smaller.")
	default:
		fmt.Printf("fast convergence only at ℓ=%d (≈ the proof's requirement)\n", firstFast)
	}
}
