// Dual process: the coalescing-random-walk argument behind Theorem 2
// (Appendix B, Figure 4), executed and verified.
//
// Reading the Voter's randomness backward turns opinions into random
// walks: agent i's opinion at round T is the round-0 opinion of wherever
// its backward walk lands, and walks that touch the source are certified
// correct. Consensus is therefore implied by all walks coalescing into
// the source, which takes at most 2n·ln n rounds w.h.p.
//
// Run with:
//
//	go run ./examples/dual_process
package main

import (
	"fmt"
	"log"
	"math"

	"bitspread"
)

func main() {
	const (
		n    = 96
		z    = 1
		seed = 11
	)
	horizon := int(2 * n * math.Log(n))

	// A recorded execution: forward Voter + the exact backward walks.
	exec, err := bitspread.RunDual(n, horizon, z, n/2, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	initial := exec.OpinionsAt(0)
	final := exec.OpinionsAt(horizon)

	hits, identityOK := 0, true
	for i := 0; i < n; i++ {
		if exec.WalkHitsSource(i) {
			hits++
		}
		if final[i] != initial[exec.WalkEndpoint(i)] {
			identityOK = false
		}
	}
	fmt.Printf("recorded Voter execution: n=%d, T=%d rounds\n", n, horizon)
	fmt.Printf("backward walks absorbed by the source: %d/%d\n", hits, n)
	fmt.Printf("duality identity (opinion_T(i) == opinion_0(walk endpoint)): %v\n", identityOK)
	consensus := true
	for _, o := range final {
		if int(o) != z {
			consensus = false
		}
	}
	fmt.Printf("consensus on z after T rounds: %v (implied whenever all walks hit the source)\n\n", consensus)

	// Coalescence-time statistics across population sizes: the engine of
	// the O(n log n) bound.
	fmt.Printf("%8s  %14s  %16s  %18s\n", "n", "2n·ln n", "mean coalesce", "P(within bound)")
	for _, size := range []int64{64, 256, 1024, 4096} {
		bound := int64(2 * float64(size) * math.Log(float64(size)))
		master := bitspread.NewRNG(seed + uint64(size))
		const reps = 40
		absorbed, sum := 0, 0.0
		for r := 0; r < reps; r++ {
			res := bitspread.CoalescenceTime(size, bound, master.Split(), false)
			if res.Absorbed {
				absorbed++
				sum += float64(res.Steps)
			}
		}
		mean := "-"
		if absorbed > 0 {
			mean = fmt.Sprintf("%.0f", sum/float64(absorbed))
		}
		fmt.Printf("%8d  %14d  %16s  %18.2f\n", size, bound, mean, float64(absorbed)/reps)
	}
}
