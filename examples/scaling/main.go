// Scaling study with the sweep API: estimate convergence-time exponents
// for several dynamics in a few lines — the workflow behind the T1/T2/T3
// experiments, exposed for downstream studies.
//
// Run with:
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"bitspread"
)

func main() {
	grid := &bitspread.SweepGrid{
		Name: "worst-case bit dissemination",
		Ns:   []int64{512, 1024, 2048, 4096, 8192},
		Families: []*bitspread.Family{
			bitspread.VoterFamily(bitspread.Fixed(1)),
			bitspread.MinorityFamily(bitspread.SqrtNLogN(1)),
		},
		Z:        1,
		Init:     bitspread.SweepWorstCase,
		Replicas: 12,
		Seed:     2024,
	}

	cells, err := grid.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bitspread.SweepTable("τ from the all-wrong start (z=1)", cells))

	for _, fam := range grid.Families {
		fit, err := bitspread.SweepFitExponent(cells, fam.Name())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s τ ≈ %.2f·n^%.3f  (R²=%.3f)\n", fam.Name(), fit.Coeff, fit.Exponent, fit.R2)
	}
	fmt.Println("\nreading: the Voter's exponent sits near 1 (Theorems 1–2: almost-linear is")
	fmt.Println("optimal without memory at constant ℓ); the large-sample Minority's sits near 0")
	fmt.Println("(polylog, [15]) — the separation the paper is about.")
}
