// Memory versus clock: the paper's §5 question, measured.
//
// Theorem 1 forbids fast bit dissemination with constant samples and no
// memory. This example runs the three-way ablation of experiment X4 on a
// single instance and prints the trajectories side by side:
//
//   - memory-less Minority(3) from the adversarial start: parked at the
//     p = 1/2 attractor;
//   - the accumulator protocol (constant ℓ, O(log n) bits, shared clock):
//     pools w rounds of samples and replays the big-sample Minority of
//     [15] window by window — converges in Õ(√n) rounds;
//   - the same accumulator with adversarial phases (no shared clock):
//     drives close to the correct consensus but never locks it, because
//     exact consensus needs the whole population to flip in one round.
//
// Run with:
//
//	go run ./examples/memory_vs_clock
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"bitspread"
)

const (
	n    = 4096
	ell  = 3
	z    = 1
	seed = 21
)

func main() {
	budget := int64(math.Pow(n, 0.9))
	window := int(math.Ceil(1.2 * math.Sqrt(n*math.Log(n)) / ell))
	fmt.Printf("n=%d, ℓ=%d, window w=%d, budget ⌈n^0.9⌉ = %d rounds\n\n", n, ell, window, budget)

	// 1. Memory-less control from the Theorem 12 adversarial start.
	cfg, consts := bitspread.AdversarialConfig(bitspread.Minority(ell), n, budget)
	cfg.X0 = int64((consts.A1 + consts.A3) / 2 * n)
	trace1 := newTrace(budget)
	cfg.Record = trace1.record
	res1, err := bitspread.RunParallel(cfg, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	report("memory-less Minority(3), adversarial start", res1.Converged, res1.Rounds, res1.FinalCount, trace1)

	// 2. Accumulator with a shared clock, from the all-wrong start.
	sync, err := bitspread.NewAccumulatorMinority(ell, window, true)
	if err != nil {
		log.Fatal(err)
	}
	trace2 := newTrace(budget)
	res2, err := bitspread.RunMemory(bitspread.MemoryConfig{
		N: n, Protocol: sync, Z: z, X0: 1, MaxRounds: budget,
		Record: trace2.record,
	}, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("accumulator + clock (%d bits)", sync.StateBits()),
		res2.Converged, res2.Rounds, res2.FinalCount, trace2)

	// 3. Accumulator without the clock (adversarial phases and memory).
	unsync, err := bitspread.NewAccumulatorMinority(ell, window, false)
	if err != nil {
		log.Fatal(err)
	}
	trace3 := newTrace(budget)
	res3, err := bitspread.RunMemory(bitspread.MemoryConfig{
		N: n, Protocol: unsync, Z: z, X0: 1, AdversarialMemory: true, MaxRounds: budget,
		Record: trace3.record,
	}, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	report("accumulator, no clock (adversarial phases)",
		res3.Converged, res3.Rounds, res3.FinalCount, trace3)

	fmt.Println("reading: '▁..█' sparkline of the one-fraction over the run; both memory AND synchrony are needed")
}

// trace keeps a downsampled one-fraction trajectory for a sparkline.
type trace struct {
	every  int64
	points []float64
}

func newTrace(budget int64) *trace {
	every := budget / 60
	if every < 1 {
		every = 1
	}
	return &trace{every: every}
}

func (tr *trace) record(round, count int64) {
	if round%tr.every == 0 {
		tr.points = append(tr.points, float64(count)/n)
	}
}

func (tr *trace) sparkline() string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, p := range tr.points {
		idx := int(p * float64(len(glyphs)))
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

func report(name string, converged bool, rounds, final int64, tr *trace) {
	status := fmt.Sprintf("stalled at %d/%d after %d rounds", final, int64(n), rounds)
	if converged {
		status = fmt.Sprintf("converged in %d rounds", rounds)
	}
	fmt.Printf("%-48s %s\n  %s\n\n", name+":", status, tr.sparkline())
}
