// Multi-opinion bit dissemination: footnote 2 of the paper in action.
//
// With q > 2 opinions — under the natural constraint that agents never
// adopt an opinion they have not seen — a binary initial configuration
// evolves exactly as the corresponding binary protocol, so the Ω(n^{1-ε})
// lower bound transfers. This example runs the q = 3 Voter and Minority
// from genuinely three-way and from binary starts, and checks the
// reduction live.
//
// Run with:
//
//	go run ./examples/multi_opinion
package main

import (
	"fmt"
	"log"

	"bitspread"
)

const (
	n    = 2048
	seed = 33
)

func main() {
	// A genuine three-way contest: the source (opinion 2) wins from an
	// even split under the multi-opinion Voter.
	three := bitspread.MultiVoter(3, 1)
	if err := bitspread.MultiValidate(three); err != nil {
		log.Fatal(err)
	}
	res, err := bitspread.RunMultiParallel(bitspread.MultiConfig{
		N:    n,
		Rule: three,
		Z:    2,
		X0:   []int64{n / 3, n / 3, n - 2*(n/3)},
	}, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q=3 Voter, even three-way split, source holds 2:\n")
	fmt.Printf("  converged=%v in %d rounds, final histogram %v\n\n", res.Converged, res.Rounds, res.Final)

	// The footnote 2 reduction: a binary start stays binary forever.
	minority := bitspread.MultiMinority(3, 3)
	sawUnseen := false
	res, err = bitspread.RunMultiParallel(bitspread.MultiConfig{
		N:         n,
		Rule:      minority,
		Z:         1,
		X0:        []int64{n / 4, n - n/4, 0}, // opinion 2 absent
		MaxRounds: 500,
		Record: func(_ int64, counts []int64) {
			if counts[2] != 0 {
				sawUnseen = true
			}
		},
	}, bitspread.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q=3 Minority from a binary start (opinion 2 absent):\n")
	fmt.Printf("  unseen opinion ever appeared: %v (footnote 2: impossible)\n", sawUnseen)
	fmt.Printf("  converged within 500 rounds: %v — the binary Minority(3) trap carries over\n", res.Converged)
	fmt.Printf("  final histogram: %v (parked near the binary 1/2 attractor)\n", res.Final)
}
